//! The RV32IM core model with VexRiscv-like 5-stage pipeline timing.

use crate::isa::{decode, AluOp, BranchOp, CsrOp, CsrSrc, Instr, LoadOp, MulOp, Reg, StoreOp};

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSize {
    /// One byte.
    Byte,
    /// Two bytes.
    Half,
    /// Four bytes.
    Word,
}

impl AccessSize {
    /// The access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }
}

/// A successful bus read: the value plus any wait-states the device charged.
///
/// Wait-states model memory-port contention: for example the RPU's packet
/// memory shares one URAM port between the core and the DMA engine (paper
/// §4.1), so a core access that loses arbitration is charged extra cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusValue {
    /// The loaded value, zero-extended into 32 bits.
    pub value: u32,
    /// Extra cycles the access took beyond the pipeline's base cost.
    pub wait_cycles: u32,
}

impl BusValue {
    /// A value with no wait-states (single-cycle BRAM).
    pub fn fast(value: u32) -> Self {
        Self {
            value,
            wait_cycles: 0,
        }
    }
}

/// A bus fault: access outside any mapped device, or a device-specific error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFault {
    /// Faulting address.
    pub addr: u32,
    /// `true` for stores, `false` for loads/fetches.
    pub is_store: bool,
}

impl std::fmt::Display for BusFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bus fault on {} at 0x{:08x}",
            if self.is_store { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for BusFault {}

/// An instruction fetch result: either the raw word (the core decodes it) or
/// an already-decoded instruction from a bus-side decode cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// The raw instruction word; the core runs the decoder on it.
    Word(u32),
    /// A predecoded instruction, bypassing the decoder entirely.
    Decoded(Instr),
}

/// The memory system as seen by the core: instruction fetches, loads, and
/// stores. Implemented by each RPU's memory subsystem.
pub trait Bus {
    /// Loads `size` bytes from `addr` (also used for instruction fetch).
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn load(&mut self, addr: u32, size: AccessSize) -> Result<BusValue, BusFault>;

    /// Stores the low `size` bytes of `value` to `addr`. Returns wait-states.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn store(&mut self, addr: u32, value: u32, size: AccessSize) -> Result<u32, BusFault>;

    /// Fetches the instruction at `pc`. The default forwards to [`load`];
    /// buses with a [`DecodeCache`](crate::DecodeCache) override this to
    /// return predecoded instructions. Either way the architectural outcome
    /// must be identical to a plain word load plus decode.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault`] for unmapped addresses.
    fn fetch(&mut self, pc: u32) -> Result<Fetched, BusFault> {
        self.load(pc, AccessSize::Word)
            .map(|v| Fetched::Word(v.value))
    }
}

/// CSR addresses the core implements.
pub mod csr {
    /// Machine status (bit 3 = MIE, bit 7 = MPIE).
    pub const MSTATUS: u16 = 0x300;
    /// Machine trap vector.
    pub const MTVEC: u16 = 0x305;
    /// Machine interrupt enable (one bit per interrupt line).
    pub const MIE: u16 = 0x304;
    /// Machine interrupt pending (read-only mirror of the pending lines).
    pub const MIP: u16 = 0x344;
    /// Machine exception PC.
    pub const MEPC: u16 = 0x341;
    /// Machine trap cause.
    pub const MCAUSE: u16 = 0x342;
    /// Machine scratch.
    pub const MSCRATCH: u16 = 0x340;
    /// Cycle counter, low 32 bits (read-only).
    pub const MCYCLE: u16 = 0xb00;
    /// Cycle counter, high 32 bits (read-only).
    pub const MCYCLEH: u16 = 0xb80;
    /// Retired-instruction counter, low 32 bits (read-only).
    pub const MINSTRET: u16 = 0xb02;
}

const MSTATUS_MIE: u32 = 1 << 3;
const MSTATUS_MPIE: u32 = 1 << 7;

/// Pipeline cost model, tunable per core variant. Defaults approximate the
/// VexRiscv configuration the paper uses (5-stage, single-issue, optimized
/// for FPGAs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles for a simple ALU/CSR instruction.
    pub base: u32,
    /// Cycles for a load hitting single-cycle memory (before wait-states).
    pub load: u32,
    /// Cycles for a store (before wait-states).
    pub store: u32,
    /// Cycles for a taken branch (misfetch penalty included).
    pub branch_taken: u32,
    /// Cycles for a not-taken branch.
    pub branch_not_taken: u32,
    /// Cycles for `jal`/`jalr`/`mret` (pipeline refill).
    pub jump: u32,
    /// Cycles for a multiply.
    pub mul: u32,
    /// Cycles for a divide/remainder.
    pub div: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            base: 1,
            load: 2,
            store: 1,
            branch_taken: 3,
            branch_not_taken: 1,
            jump: 3,
            mul: 4,
            div: 34,
        }
    }
}

/// The outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// An instruction retired, consuming `cycles` cycles.
    Executed {
        /// Cycles charged, including wait-states.
        cycles: u32,
    },
    /// The core is parked in `wfi` with no enabled interrupt pending.
    WaitingForInterrupt,
    /// The core hit `ebreak` and is halted for the host debugger (§3.4).
    Break,
    /// The core executed `ecall`; the environment interprets `a7`/`a0`.
    Ecall,
    /// A bus fault or illegal instruction halted the core.
    Fault(CpuFault),
}

/// A condition that halts the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuFault {
    /// Memory access outside mapped devices.
    Bus(BusFault),
    /// Undecodable instruction word at the given PC.
    IllegalInstruction {
        /// PC of the illegal word.
        pc: u32,
        /// The word itself.
        word: u32,
    },
}

/// The RV32IM core.
///
/// # Examples
///
/// Running a tiny program against a flat-RAM bus:
///
/// ```
/// use rosebud_riscv::{Cpu, RamBus, assemble, StepResult};
///
/// let image = assemble("
///     li a0, 6
///     li a1, 7
///     mul a2, a0, a1
///     ebreak
/// ").unwrap();
/// let mut bus = RamBus::new(1024);
/// bus.load_image(0, image.words());
/// let mut cpu = Cpu::new(0);
/// while !matches!(cpu.step(&mut bus), StepResult::Break) {}
/// assert_eq!(cpu.reg(rosebud_riscv::Reg::parse("a2").unwrap()), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    pc: u32,
    regs: [u32; 32],
    mstatus: u32,
    mie: u32,
    mip: u32,
    mtvec: u32,
    mepc: u32,
    mcause: u32,
    mscratch: u32,
    cycles: u64,
    instret: u64,
    mem_waits: u64,
    cost: CostModel,
    halted: Halt,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Halt {
    Running,
    Wfi,
    Break,
    Fault,
}

impl Cpu {
    /// Creates a core with PC at `reset_pc` and all registers zero.
    pub fn new(reset_pc: u32) -> Self {
        Self {
            pc: reset_pc,
            regs: [0; 32],
            mstatus: 0,
            mie: 0,
            mip: 0,
            mtvec: 0,
            mepc: 0,
            mcause: 0,
            mscratch: 0,
            cycles: 0,
            instret: 0,
            mem_waits: 0,
            cost: CostModel::default(),
            halted: Halt::Running,
        }
    }

    /// Replaces the pipeline cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Forces the program counter (host debugger / boot loader use).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
        if self.halted != Halt::Fault {
            self.halted = Halt::Running;
        }
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.0 as usize]
    }

    /// Writes a register (`x0` stays zero).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if reg.0 != 0 {
            self.regs[reg.0 as usize] = value;
        }
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Total wait-state cycles paid to the memory system beyond the
    /// pipeline's base load/store cost — the memory-port-contention share of
    /// [`Cpu::cycles`] (the URAM arbitration loss of paper §4.1).
    pub fn mem_wait_cycles(&self) -> u64 {
        self.mem_waits
    }

    /// `true` when halted by `ebreak` or a fault.
    pub fn is_halted(&self) -> bool {
        matches!(self.halted, Halt::Break | Halt::Fault)
    }

    /// `true` when parked in `wfi`.
    pub fn is_waiting(&self) -> bool {
        self.halted == Halt::Wfi
    }

    /// `true` when a [`Cpu::step`] is guaranteed to change no core state:
    /// halted on `ebreak`/fault, or parked in `wfi` with no pending unmasked
    /// interrupt. Event-skipping simulation kernels use this to elide ticks;
    /// any [`Cpu::raise_irq`] invalidates the answer.
    pub fn is_parked(&self) -> bool {
        match self.halted {
            Halt::Break | Halt::Fault => true,
            Halt::Wfi => self.mip & self.mie == 0,
            Halt::Running => false,
        }
    }

    /// Resumes a core halted by `ebreak` (host "continue").
    pub fn resume(&mut self) {
        if self.halted == Halt::Break {
            self.halted = Halt::Running;
        }
    }

    /// Raises interrupt line `line` (0–31). The core takes it when enabled.
    pub fn raise_irq(&mut self, line: u8) {
        self.mip |= 1 << line;
        if self.halted == Halt::Wfi && self.mip & self.mie != 0 {
            self.halted = Halt::Running;
        }
    }

    /// Clears interrupt line `line`.
    pub fn clear_irq(&mut self, line: u8) {
        self.mip &= !(1 << line);
    }

    /// Pending interrupt lines.
    pub fn pending_irqs(&self) -> u32 {
        self.mip
    }

    /// Resets the core: PC to `reset_pc`, registers and CSRs cleared. Used
    /// when an RPU is rebooted after partial reconfiguration (Appendix A.8).
    pub fn reset(&mut self, reset_pc: u32) {
        *self = Self {
            cost: self.cost,
            ..Self::new(reset_pc)
        };
    }

    fn read_csr(&self, addr: u16) -> u32 {
        match addr {
            csr::MSTATUS => self.mstatus,
            csr::MTVEC => self.mtvec,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MSCRATCH => self.mscratch,
            csr::MCYCLE => self.cycles as u32,
            csr::MCYCLEH => (self.cycles >> 32) as u32,
            csr::MINSTRET => self.instret as u32,
            _ => 0,
        }
    }

    fn write_csr(&mut self, addr: u16, value: u32) {
        match addr {
            csr::MSTATUS => self.mstatus = value & (MSTATUS_MIE | MSTATUS_MPIE),
            csr::MTVEC => self.mtvec = value & !0b11,
            csr::MIE => self.mie = value,
            csr::MEPC => self.mepc = value & !0b1,
            csr::MCAUSE => self.mcause = value,
            csr::MSCRATCH => self.mscratch = value,
            _ => {}
        }
    }

    fn take_interrupt(&mut self) -> bool {
        if self.mstatus & MSTATUS_MIE == 0 {
            return false;
        }
        let active = self.mip & self.mie;
        if active == 0 {
            return false;
        }
        let line = active.trailing_zeros();
        self.mepc = self.pc;
        self.mcause = 0x8000_0000 | line;
        // MPIE <- MIE, MIE <- 0.
        self.mstatus = (self.mstatus & !MSTATUS_MPIE)
            | if self.mstatus & MSTATUS_MIE != 0 {
                MSTATUS_MPIE
            } else {
                0
            };
        self.mstatus &= !MSTATUS_MIE;
        self.pc = self.mtvec;
        true
    }

    /// Executes one instruction (or takes a pending interrupt) against `bus`.
    pub fn step(&mut self, bus: &mut impl Bus) -> StepResult {
        match self.halted {
            Halt::Break => return StepResult::Break,
            Halt::Fault => {
                return StepResult::Fault(CpuFault::Bus(BusFault {
                    addr: self.pc,
                    is_store: false,
                }))
            }
            Halt::Wfi => {
                if self.mip & self.mie != 0 {
                    self.halted = Halt::Running;
                } else {
                    return StepResult::WaitingForInterrupt;
                }
            }
            Halt::Running => {}
        }

        if self.take_interrupt() {
            // Trap entry costs a pipeline refill.
            self.cycles += u64::from(self.cost.jump);
            return StepResult::Executed {
                cycles: self.cost.jump,
            };
        }

        let instr = match bus.fetch(self.pc) {
            Ok(Fetched::Decoded(i)) => i,
            Ok(Fetched::Word(word)) => match decode(word) {
                Ok(i) => i,
                Err(_) => {
                    self.halted = Halt::Fault;
                    return StepResult::Fault(CpuFault::IllegalInstruction { pc: self.pc, word });
                }
            },
            Err(fault) => {
                self.halted = Halt::Fault;
                return StepResult::Fault(CpuFault::Bus(fault));
            }
        };

        let mut cycles = self.cost.base;
        let mut next_pc = self.pc.wrapping_add(4);

        macro_rules! fault {
            ($f:expr) => {{
                self.halted = Halt::Fault;
                return StepResult::Fault(CpuFault::Bus($f));
            }};
        }

        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, (imm << 12) as u32),
            Instr::Auipc { rd, imm } => self.set_reg(rd, self.pc.wrapping_add((imm << 12) as u32)),
            Instr::Jal { rd, imm } => {
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(imm as u32);
                cycles = self.cost.jump;
            }
            Instr::Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = target;
                cycles = self.cost.jump;
            }
            Instr::Branch { op, rs1, rs2, imm } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(imm as u32);
                    cycles = self.cost.branch_taken;
                } else {
                    cycles = self.cost.branch_not_taken;
                }
            }
            Instr::Load { op, rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let size = match op {
                    LoadOp::Lb | LoadOp::Lbu => AccessSize::Byte,
                    LoadOp::Lh | LoadOp::Lhu => AccessSize::Half,
                    LoadOp::Lw => AccessSize::Word,
                };
                let loaded = match bus.load(addr, size) {
                    Ok(v) => v,
                    Err(f) => fault!(f),
                };
                let value = match op {
                    LoadOp::Lb => loaded.value as u8 as i8 as i32 as u32,
                    LoadOp::Lbu => loaded.value & 0xff,
                    LoadOp::Lh => loaded.value as u16 as i16 as i32 as u32,
                    LoadOp::Lhu => loaded.value & 0xffff,
                    LoadOp::Lw => loaded.value,
                };
                self.set_reg(rd, value);
                self.mem_waits += u64::from(loaded.wait_cycles);
                cycles = self.cost.load + loaded.wait_cycles;
            }
            Instr::Store { op, rs1, rs2, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let size = match op {
                    StoreOp::Sb => AccessSize::Byte,
                    StoreOp::Sh => AccessSize::Half,
                    StoreOp::Sw => AccessSize::Word,
                };
                match bus.store(addr, self.reg(rs2), size) {
                    Ok(wait) => {
                        self.mem_waits += u64::from(wait);
                        cycles = self.cost.store + wait;
                    }
                    Err(f) => fault!(f),
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let b = imm as u32;
                self.set_reg(rd, alu(op, a, b));
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                self.set_reg(rd, alu(op, a, b));
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let value = match op {
                    MulOp::Mul => a.wrapping_mul(b),
                    MulOp::Mulh => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
                    MulOp::Mulhsu => ((a as i32 as i64 * b as i64) >> 32) as u32,
                    MulOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
                    MulOp::Div => {
                        if b == 0 {
                            u32::MAX
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            a
                        } else {
                            ((a as i32) / (b as i32)) as u32
                        }
                    }
                    MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
                    MulOp::Rem => {
                        if b == 0 {
                            a
                        } else if a == 0x8000_0000 && b == u32::MAX {
                            0
                        } else {
                            ((a as i32) % (b as i32)) as u32
                        }
                    }
                    MulOp::Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.set_reg(rd, value);
                cycles = match op {
                    MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => self.cost.mul,
                    _ => self.cost.div,
                };
            }
            Instr::Fence => {}
            Instr::Ecall => {
                self.pc = next_pc;
                self.cycles += u64::from(cycles);
                self.instret += 1;
                return StepResult::Ecall;
            }
            Instr::Ebreak => {
                self.halted = Halt::Break;
                self.cycles += u64::from(cycles);
                return StepResult::Break;
            }
            Instr::Mret => {
                next_pc = self.mepc;
                // MIE <- MPIE.
                if self.mstatus & MSTATUS_MPIE != 0 {
                    self.mstatus |= MSTATUS_MIE;
                } else {
                    self.mstatus &= !MSTATUS_MIE;
                }
                self.mstatus |= MSTATUS_MPIE;
                cycles = self.cost.jump;
            }
            Instr::Wfi => {
                self.pc = next_pc;
                self.cycles += u64::from(cycles);
                self.instret += 1;
                if self.mip & self.mie == 0 {
                    self.halted = Halt::Wfi;
                    return StepResult::WaitingForInterrupt;
                }
                return StepResult::Executed { cycles };
            }
            Instr::Csr { op, rd, csr, src } => {
                let old = self.read_csr(csr);
                let operand = match src {
                    CsrSrc::Reg(r) => self.reg(r),
                    CsrSrc::Imm(v) => u32::from(v),
                };
                let new = match op {
                    CsrOp::Rw => operand,
                    CsrOp::Rs => old | operand,
                    CsrOp::Rc => old & !operand,
                };
                let skip_write = matches!(op, CsrOp::Rs | CsrOp::Rc)
                    && matches!(src, CsrSrc::Reg(Reg(0)) | CsrSrc::Imm(0));
                if !skip_write {
                    self.write_csr(csr, new);
                }
                self.set_reg(rd, old);
            }
        }

        self.pc = next_pc;
        self.cycles += u64::from(cycles);
        self.instret += 1;
        StepResult::Executed { cycles }
    }
}

pub(crate) fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 31),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 31),
        AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

/// A flat RAM bus for tests and standalone programs.
///
/// Word-aligned backing store; unaligned sub-word access is supported the way
/// simple FPGA memories implement it (byte lanes).
#[derive(Debug, Clone)]
pub struct RamBus {
    mem: Vec<u8>,
    icache: Option<crate::DecodeCache>,
}

impl RamBus {
    /// Creates `size` bytes of zeroed RAM.
    pub fn new(size: usize) -> Self {
        Self {
            mem: vec![0; size],
            icache: None,
        }
    }

    /// Enables the decoded-instruction cache over the whole RAM. Purely a
    /// speed knob: fetch results and fault behaviour are unchanged.
    pub fn with_decode_cache(mut self) -> Self {
        self.icache = Some(crate::DecodeCache::new(self.mem.len()));
        self
    }

    /// The decode cache's counters, when one is enabled.
    pub fn decode_cache_stats(&self) -> Option<crate::DecodeCacheStats> {
        self.icache.as_ref().map(crate::DecodeCache::stats)
    }

    /// Copies a word image to `base` (the boot loader path).
    pub fn load_image(&mut self, base: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let at = base as usize + i * 4;
            self.mem[at..at + 4].copy_from_slice(&w.to_le_bytes());
        }
        if let Some(cache) = &mut self.icache {
            cache.invalidate_bytes(base, words.len() * 4);
            cache.predecode(base, words);
        }
    }

    /// Raw access to the backing store.
    pub fn mem(&self) -> &[u8] {
        &self.mem
    }

    /// Mutable raw access to the backing store.
    pub fn mem_mut(&mut self) -> &mut [u8] {
        &mut self.mem
    }
}

impl Bus for RamBus {
    fn load(&mut self, addr: u32, size: AccessSize) -> Result<BusValue, BusFault> {
        let addr = addr as usize;
        let n = size.bytes() as usize;
        if addr + n > self.mem.len() {
            return Err(BusFault {
                addr: addr as u32,
                is_store: false,
            });
        }
        let mut bytes = [0u8; 4];
        bytes[..n].copy_from_slice(&self.mem[addr..addr + n]);
        Ok(BusValue::fast(u32::from_le_bytes(bytes)))
    }

    fn store(&mut self, addr: u32, value: u32, size: AccessSize) -> Result<u32, BusFault> {
        let addr = addr as usize;
        let n = size.bytes() as usize;
        if addr + n > self.mem.len() {
            return Err(BusFault {
                addr: addr as u32,
                is_store: true,
            });
        }
        self.mem[addr..addr + n].copy_from_slice(&value.to_le_bytes()[..n]);
        if let Some(cache) = &mut self.icache {
            cache.invalidate_bytes(addr as u32, n);
        }
        Ok(0)
    }

    fn fetch(&mut self, pc: u32) -> Result<Fetched, BusFault> {
        let Some(cache) = &mut self.icache else {
            return self
                .load(pc, AccessSize::Word)
                .map(|v| Fetched::Word(v.value));
        };
        if !cache.covers(pc) || pc as usize + 4 > self.mem.len() {
            return self
                .load(pc, AccessSize::Word)
                .map(|v| Fetched::Word(v.value));
        }
        if let Some(i) = cache.get(pc) {
            return Ok(Fetched::Decoded(i));
        }
        let at = pc as usize;
        let word = u32::from_le_bytes(self.mem[at..at + 4].try_into().expect("4-byte slice"));
        Ok(match decode(word) {
            Ok(i) => {
                cache.fill(pc, i);
                Fetched::Decoded(i)
            }
            // Never cache undecodable words: the core must re-read the raw
            // word and fault with the exact pc/word the uncached path reports.
            Err(_) => Fetched::Word(word),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(source: &str, max_steps: usize) -> (Cpu, RamBus) {
        let image = assemble(source).expect("assembly failed");
        let mut bus = RamBus::new(64 * 1024);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        for _ in 0..max_steps {
            match cpu.step(&mut bus) {
                StepResult::Break | StepResult::Fault(_) => break,
                _ => {}
            }
        }
        (cpu, bus)
    }

    fn reg(cpu: &Cpu, name: &str) -> u32 {
        cpu.reg(Reg::parse(name).unwrap())
    }

    #[test]
    fn arithmetic_program() {
        let (cpu, _) = run(
            "
            li a0, 100
            li a1, -3
            add a2, a0, a1
            sub a3, a0, a1
            mul a4, a0, a1
            div a5, a0, a1
            rem a6, a0, a1
            ebreak
            ",
            100,
        );
        assert_eq!(reg(&cpu, "a2"), 97);
        assert_eq!(reg(&cpu, "a3"), 103);
        assert_eq!(reg(&cpu, "a4") as i32, -300);
        assert_eq!(reg(&cpu, "a5") as i32, -33);
        assert_eq!(reg(&cpu, "a6") as i32, 1);
    }

    #[test]
    fn fibonacci_loop() {
        let (cpu, _) = run(
            "
                li a0, 10      # n
                li a1, 0       # fib(0)
                li a2, 1       # fib(1)
            loop:
                beqz a0, done
                add a3, a1, a2
                mv a1, a2
                mv a2, a3
                addi a0, a0, -1
                j loop
            done:
                ebreak
            ",
            500,
        );
        assert_eq!(reg(&cpu, "a1"), 55);
    }

    #[test]
    fn memory_access_and_subword() {
        let (_, bus) = run(
            "
            li t0, 0x1000
            li t1, 0x11223344
            sw t1, 0(t0)
            sb t1, 8(t0)
            sh t1, 12(t0)
            ebreak
            ",
            100,
        );
        assert_eq!(&bus.mem()[0x1000..0x1004], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(bus.mem()[0x1008], 0x44);
        assert_eq!(&bus.mem()[0x100c..0x100e], &[0x44, 0x33]);
    }

    #[test]
    fn signed_loads_sign_extend() {
        let (cpu, _) = run(
            "
            li t0, 0x1000
            li t1, 0xFF80
            sh t1, 0(t0)
            lb a0, 0(t0)
            lbu a1, 0(t0)
            lh a2, 0(t0)
            lhu a3, 0(t0)
            ebreak
            ",
            100,
        );
        assert_eq!(reg(&cpu, "a0") as i32, -128);
        assert_eq!(reg(&cpu, "a1"), 0x80);
        assert_eq!(reg(&cpu, "a2") as i32, -128i32);
        assert_eq!(reg(&cpu, "a3"), 0xFF80);
    }

    #[test]
    fn division_by_zero_follows_spec() {
        let (cpu, _) = run(
            "
            li a0, 7
            li a1, 0
            div a2, a0, a1
            divu a3, a0, a1
            rem a4, a0, a1
            remu a5, a0, a1
            ebreak
            ",
            100,
        );
        assert_eq!(reg(&cpu, "a2"), u32::MAX);
        assert_eq!(reg(&cpu, "a3"), u32::MAX);
        assert_eq!(reg(&cpu, "a4"), 7);
        assert_eq!(reg(&cpu, "a5"), 7);
    }

    #[test]
    fn function_call_and_return() {
        let (cpu, _) = run(
            "
                li sp, 0x8000
                li a0, 5
                call double
                call double
                ebreak
            double:
                add a0, a0, a0
                ret
            ",
            100,
        );
        assert_eq!(reg(&cpu, "a0"), 20);
    }

    #[test]
    fn interrupt_taken_when_enabled() {
        let image = assemble(
            "
                li t0, handler
                csrw mtvec, t0
                li t0, 4          # enable line 2
                csrw mie, t0
                csrsi mstatus, 8  # MIE
            spin:
                j spin
            handler:
                li a0, 99
                ebreak
            ",
        )
        .unwrap();
        let mut bus = RamBus::new(4096);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        for _ in 0..10 {
            cpu.step(&mut bus);
        }
        assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 0);
        cpu.raise_irq(2);
        let mut hit_break = false;
        for _ in 0..10 {
            if matches!(cpu.step(&mut bus), StepResult::Break) {
                hit_break = true;
                break;
            }
        }
        assert!(hit_break, "handler did not run");
        assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 99);
        assert_eq!(cpu.pending_irqs(), 4);
    }

    #[test]
    fn wfi_parks_until_interrupt() {
        let image = assemble(
            "
                li t0, handler
                csrw mtvec, t0
                li t0, 2
                csrw mie, t0
                csrsi mstatus, 8
                wfi
                ebreak        # skipped: handler runs first
            handler:
                li a0, 7
                ebreak
            ",
        )
        .unwrap();
        let mut bus = RamBus::new(4096);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        for _ in 0..10 {
            cpu.step(&mut bus);
            if cpu.is_waiting() {
                break;
            }
        }
        assert!(cpu.is_waiting());
        assert_eq!(cpu.step(&mut bus), StepResult::WaitingForInterrupt);
        cpu.raise_irq(1);
        for _ in 0..5 {
            if matches!(cpu.step(&mut bus), StepResult::Break) {
                break;
            }
        }
        assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 7);
    }

    #[test]
    fn mret_returns_and_reenables_interrupts() {
        let image = assemble(
            "
                li t0, handler
                csrw mtvec, t0
                li t0, 1
                csrw mie, t0
                csrsi mstatus, 8
                li a1, 0
            spin:
                addi a1, a1, 1
                li t1, 3
                blt a1, t1, spin
                ebreak
            handler:
                li a0, 1
                csrw mip, zero  # no-op: mip is externally controlled
                mret
            ",
        )
        .unwrap();
        let mut bus = RamBus::new(4096);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        for _ in 0..8 {
            cpu.step(&mut bus);
        }
        cpu.raise_irq(0);
        // Handler runs once; clear the line while it executes.
        for _ in 0..3 {
            cpu.step(&mut bus);
        }
        cpu.clear_irq(0);
        let mut done = false;
        for _ in 0..50 {
            if matches!(cpu.step(&mut bus), StepResult::Break) {
                done = true;
                break;
            }
        }
        assert!(done, "program did not finish after mret");
        assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 1);
    }

    #[test]
    fn bus_fault_halts_core() {
        let (cpu, _) = run(
            "
            li t0, 0x7fffff00
            lw a0, 0(t0)
            ebreak
            ",
            10,
        );
        assert!(cpu.is_halted());
    }

    #[test]
    fn cycle_costs_match_model() {
        // 3 ALU instructions + ebreak(1): base model charges 1 each.
        let (cpu, _) = run(
            "
            addi a0, zero, 1
            addi a0, a0, 1
            addi a0, a0, 1
            ebreak
            ",
            10,
        );
        assert_eq!(cpu.cycles(), 4);
        // A taken jump costs 3.
        let (cpu, _) = run(
            "
                j over
                addi a0, a0, 1
            over:
                ebreak
            ",
            10,
        );
        assert_eq!(cpu.cycles(), 3 + 1);
    }
}
