//! RV32IM instruction-set simulator for the Rosebud reproduction.
//!
//! Each RPU in the Rosebud framework contains a VexRiscv core — "a small open
//! source 32-bit RISC-V core with a 5-stage pipeline that is optimized for
//! FPGAs" (paper §5). This crate provides the software model of that core:
//!
//! * [`decode`]/[`encode`] — the full RV32IM instruction set,
//! * [`Cpu`] — the execution engine with a VexRiscv-like cycle [`CostModel`]
//!   (pipeline refills on jumps, multi-cycle multiply/divide, wait-states
//!   charged by the memory system through the [`Bus`] trait),
//! * [`assemble`] — a two-pass assembler for writing firmware, and
//! * [`disassemble`] — the inverse, used by host-side debug dumps.
//!
//! # Examples
//!
//! ```
//! use rosebud_riscv::{assemble, Cpu, RamBus, StepResult, Reg};
//!
//! let image = assemble("
//!         li a0, 0        # sum
//!         li a1, 10       # counter
//!     loop:
//!         add a0, a0, a1
//!         addi a1, a1, -1
//!         bnez a1, loop
//!         ebreak
//! ").unwrap();
//!
//! let mut bus = RamBus::new(4096);
//! bus.load_image(0, image.words());
//! let mut cpu = Cpu::new(0);
//! while !matches!(cpu.step(&mut bus), StepResult::Break) {}
//! assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod asm;
mod cpu;
mod disasm;
mod icache;
mod isa;

pub use analyze::{
    Analyzer, Check, Diagnostic, EntryWcet, LintReport, LoopBound, MachineSpec, MmioReg,
    ProtocolSpec, Region, Severity,
};
pub use asm::{assemble, assemble_at, AsmError, Image, Pos};
pub use cpu::{
    csr, AccessSize, Bus, BusFault, BusValue, CostModel, Cpu, CpuFault, Fetched, RamBus, StepResult,
};
pub use disasm::{disassemble, disassemble_image};
pub use icache::{DecodeCache, DecodeCacheStats};
pub use isa::{
    decode, encode, AluOp, BranchOp, CsrOp, CsrSrc, DecodeError, EncodeError, Instr, LoadOp, MulOp,
    Reg, StoreOp,
};
