//! RV32IM instruction definitions, decoding, and encoding.

use std::fmt;

/// A decoded RV32IM instruction.
///
/// Covers the full RV32I base set plus the M extension and the handful of
/// system instructions (CSR access, `mret`, `wfi`, `ecall`, `ebreak`) the
/// VexRiscv core in each RPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field names (rd, rs1, rs2, imm, op) follow the ISA manual
pub enum Instr {
    /// Load upper immediate: `rd = imm << 12`.
    Lui { rd: Reg, imm: i32 },
    /// Add upper immediate to PC: `rd = pc + (imm << 12)`.
    Auipc { rd: Reg, imm: i32 },
    /// Jump and link: `rd = pc + 4; pc += imm`.
    Jal { rd: Reg, imm: i32 },
    /// Jump and link register: `rd = pc + 4; pc = (rs1 + imm) & !1`.
    Jalr { rd: Reg, rs1: Reg, imm: i32 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        imm: i32,
    },
    /// Memory load.
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Memory store.
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        imm: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU operation.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Memory fence (a no-op in the in-order single-core model).
    Fence,
    /// Environment call (used by firmware to signal the simulator).
    Ecall,
    /// Breakpoint (halts the core for the host debugger, §3.4).
    Ebreak,
    /// CSR read-write/set/clear, register or immediate form.
    Csr {
        op: CsrOp,
        rd: Reg,
        csr: u16,
        src: CsrSrc,
    },
    /// Return from machine-mode trap.
    Mret,
    /// Wait for interrupt: parks the core until an interrupt is pending.
    Wfi,
}

/// A register index 0–31.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);

    /// Creates a register, checking range.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range: {index}");
        Reg(index)
    }

    /// The ABI name (`zero`, `ra`, `sp`, `a0`, …).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses either an `x<N>` or ABI register name.
    pub fn parse(name: &str) -> Option<Reg> {
        let name = name.trim();
        if let Some(num) = name.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if n < 32 {
                    return Some(Reg(n));
                }
            }
        }
        let idx = match name {
            "zero" => 0,
            "ra" => 1,
            "sp" => 2,
            "gp" => 3,
            "tp" => 4,
            "t0" => 5,
            "t1" => 6,
            "t2" => 7,
            "s0" | "fp" => 8,
            "s1" => 9,
            "a0" => 10,
            "a1" => 11,
            "a2" => 12,
            "a3" => 13,
            "a4" => 14,
            "a5" => 15,
            "a6" => 16,
            "a7" => 17,
            "s2" => 18,
            "s3" => 19,
            "s4" => 20,
            "s5" => 21,
            "s6" => 22,
            "s7" => 23,
            "s8" => 24,
            "s9" => 25,
            "s10" => 26,
            "s11" => 27,
            "t3" => 28,
            "t4" => 29,
            "t5" => 30,
            "t6" => 31,
            _ => return None,
        };
        Some(Reg(idx))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Branch comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

/// Load widths and signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign-extended.
    Lb,
    /// Load halfword, sign-extended.
    Lh,
    /// Load word.
    Lw,
    /// Load byte, zero-extended.
    Lbu,
    /// Load halfword, zero-extended.
    Lhu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store halfword.
    Sh,
    /// Store word.
    Sw,
}

/// ALU operations shared by register and immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (subtraction in the register form with the sub bit).
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
}

/// M-extension operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of signed × signed.
    Mulh,
    /// High 32 bits of signed × unsigned.
    Mulhsu,
    /// High 32 bits of unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// CSR access operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic read/write.
    Rw,
    /// Atomic read and set bits.
    Rs,
    /// Atomic read and clear bits.
    Rc,
}

/// Source operand of a CSR instruction: a register or a 5-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form (`csrrw` etc.).
    Reg(Reg),
    /// Immediate form (`csrrwi` etc.).
    Imm(u8),
}

/// Errors produced by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 32-bit word does not encode a supported instruction.
    Illegal(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal(word) => write!(f, "illegal instruction 0x{word:08x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors produced by [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// `OpImm` with [`AluOp::Sub`]: RV32 has no `subi`. Negate the
    /// immediate and use `addi` instead.
    NoSubImmediate,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NoSubImmediate => {
                write!(
                    f,
                    "`subi` does not exist in RV32; use `addi` with a negated immediate"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError::Illegal`] for any unsupported encoding.
///
/// # Examples
///
/// ```
/// use rosebud_riscv::{decode, Instr, Reg};
/// // addi a0, zero, 42
/// let instr = decode(0x02a0_0513).unwrap();
/// assert!(matches!(instr, Instr::OpImm { imm: 42, .. }));
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opcode = bits(word, 6, 0);
    let rd = Reg(bits(word, 11, 7) as u8);
    let funct3 = bits(word, 14, 12);
    let rs1 = Reg(bits(word, 19, 15) as u8);
    let rs2 = Reg(bits(word, 24, 20) as u8);
    let funct7 = bits(word, 31, 25);

    let i_imm = sext(bits(word, 31, 20), 12);
    let s_imm = sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12);
    let b_imm = sext(
        (bits(word, 31, 31) << 12)
            | (bits(word, 7, 7) << 11)
            | (bits(word, 30, 25) << 5)
            | (bits(word, 11, 8) << 1),
        13,
    );
    let u_imm = sext(bits(word, 31, 12), 20);
    let j_imm = sext(
        (bits(word, 31, 31) << 20)
            | (bits(word, 19, 12) << 12)
            | (bits(word, 20, 20) << 11)
            | (bits(word, 30, 21) << 1),
        21,
    );

    let illegal = DecodeError::Illegal(word);
    Ok(match opcode {
        0b0110111 => Instr::Lui { rd, imm: u_imm },
        0b0010111 => Instr::Auipc { rd, imm: u_imm },
        0b1101111 => Instr::Jal { rd, imm: j_imm },
        0b1100111 => {
            if funct3 != 0 {
                return Err(illegal);
            }
            Instr::Jalr {
                rd,
                rs1,
                imm: i_imm,
            }
        }
        0b1100011 => {
            let op = match funct3 {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(illegal),
            };
            Instr::Branch {
                op,
                rs1,
                rs2,
                imm: b_imm,
            }
        }
        0b0000011 => {
            let op = match funct3 {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return Err(illegal),
            };
            Instr::Load {
                op,
                rd,
                rs1,
                imm: i_imm,
            }
        }
        0b0100011 => {
            let op = match funct3 {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return Err(illegal),
            };
            Instr::Store {
                op,
                rs1,
                rs2,
                imm: s_imm,
            }
        }
        0b0010011 => {
            let (op, imm) = match funct3 {
                0b000 => (AluOp::Add, i_imm),
                0b010 => (AluOp::Slt, i_imm),
                0b011 => (AluOp::Sltu, i_imm),
                0b100 => (AluOp::Xor, i_imm),
                0b110 => (AluOp::Or, i_imm),
                0b111 => (AluOp::And, i_imm),
                0b001 => {
                    if funct7 != 0 {
                        return Err(illegal);
                    }
                    (AluOp::Sll, rs2.0 as i32)
                }
                0b101 => match funct7 {
                    0b0000000 => (AluOp::Srl, rs2.0 as i32),
                    0b0100000 => (AluOp::Sra, rs2.0 as i32),
                    _ => return Err(illegal),
                },
                _ => return Err(illegal),
            };
            Instr::OpImm { op, rd, rs1, imm }
        }
        0b0110011 => {
            if funct7 == 0b0000001 {
                let op = match funct3 {
                    0b000 => MulOp::Mul,
                    0b001 => MulOp::Mulh,
                    0b010 => MulOp::Mulhsu,
                    0b011 => MulOp::Mulhu,
                    0b100 => MulOp::Div,
                    0b101 => MulOp::Divu,
                    0b110 => MulOp::Rem,
                    0b111 => MulOp::Remu,
                    _ => return Err(illegal),
                };
                Instr::MulDiv { op, rd, rs1, rs2 }
            } else {
                let op = match (funct3, funct7) {
                    (0b000, 0b0000000) => AluOp::Add,
                    (0b000, 0b0100000) => AluOp::Sub,
                    (0b001, 0b0000000) => AluOp::Sll,
                    (0b010, 0b0000000) => AluOp::Slt,
                    (0b011, 0b0000000) => AluOp::Sltu,
                    (0b100, 0b0000000) => AluOp::Xor,
                    (0b101, 0b0000000) => AluOp::Srl,
                    (0b101, 0b0100000) => AluOp::Sra,
                    (0b110, 0b0000000) => AluOp::Or,
                    (0b111, 0b0000000) => AluOp::And,
                    _ => return Err(illegal),
                };
                Instr::Op { op, rd, rs1, rs2 }
            }
        }
        0b0001111 => Instr::Fence,
        0b1110011 => match funct3 {
            0b000 => match word {
                0x0000_0073 => Instr::Ecall,
                0x0010_0073 => Instr::Ebreak,
                0x3020_0073 => Instr::Mret,
                0x1050_0073 => Instr::Wfi,
                _ => return Err(illegal),
            },
            0b001 | 0b010 | 0b011 | 0b101 | 0b110 | 0b111 => {
                let csr = bits(word, 31, 20) as u16;
                let op = match funct3 & 0b011 {
                    0b001 => CsrOp::Rw,
                    0b010 => CsrOp::Rs,
                    0b011 => CsrOp::Rc,
                    _ => return Err(illegal),
                };
                let src = if funct3 & 0b100 != 0 {
                    CsrSrc::Imm(rs1.0)
                } else {
                    CsrSrc::Reg(rs1)
                };
                Instr::Csr { op, rd, csr, src }
            }
            _ => return Err(illegal),
        },
        _ => return Err(illegal),
    })
}

/// Encodes an instruction back to its 32-bit word.
///
/// `encode` and [`decode`] are inverses for every representable instruction,
/// a property the test suite checks exhaustively with proptest.
///
/// # Errors
///
/// Returns [`EncodeError::NoSubImmediate`] for an `OpImm` with
/// [`AluOp::Sub`]: RV32 has no `subi` — negate the immediate and use
/// `addi`. The assembler surfaces this as an [`crate::AsmError`] on the
/// offending source line.
///
/// # Panics
///
/// Panics if an immediate is out of range for its encoding (the assembler
/// checks ranges before calling).
pub fn encode(instr: Instr) -> Result<u32, EncodeError> {
    fn u_type(opcode: u32, rd: Reg, imm: i32) -> u32 {
        assert!((-(1 << 19)..(1 << 19)).contains(&imm), "U-imm out of range");
        ((imm as u32) << 12) | ((rd.0 as u32) << 7) | opcode
    }
    fn i_type(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i32) -> u32 {
        assert!((-2048..2048).contains(&imm), "I-imm out of range: {imm}");
        ((imm as u32 & 0xfff) << 20)
            | ((rs1.0 as u32) << 15)
            | (funct3 << 12)
            | ((rd.0 as u32) << 7)
            | opcode
    }
    fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
        assert!((-2048..2048).contains(&imm), "S-imm out of range: {imm}");
        let imm = imm as u32 & 0xfff;
        ((imm >> 5) << 25)
            | ((rs2.0 as u32) << 20)
            | ((rs1.0 as u32) << 15)
            | (funct3 << 12)
            | ((imm & 0x1f) << 7)
            | opcode
    }
    fn b_type(funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
        assert!(
            (-4096..4096).contains(&imm) && imm % 2 == 0,
            "B-imm out of range or misaligned: {imm}"
        );
        let imm = imm as u32 & 0x1fff;
        (((imm >> 12) & 1) << 31)
            | (((imm >> 5) & 0x3f) << 25)
            | ((rs2.0 as u32) << 20)
            | ((rs1.0 as u32) << 15)
            | (funct3 << 12)
            | (((imm >> 1) & 0xf) << 8)
            | (((imm >> 11) & 1) << 7)
            | 0b1100011
    }
    fn r_type(funct7: u32, funct3: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
        (funct7 << 25)
            | ((rs2.0 as u32) << 20)
            | ((rs1.0 as u32) << 15)
            | (funct3 << 12)
            | ((rd.0 as u32) << 7)
            | 0b0110011
    }

    Ok(match instr {
        Instr::Lui { rd, imm } => u_type(0b0110111, rd, imm),
        Instr::Auipc { rd, imm } => u_type(0b0010111, rd, imm),
        Instr::Jal { rd, imm } => {
            assert!(
                (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
                "J-imm out of range or misaligned: {imm}"
            );
            let imm = imm as u32 & 0x1f_ffff;
            (((imm >> 20) & 1) << 31)
                | (((imm >> 1) & 0x3ff) << 21)
                | (((imm >> 11) & 1) << 20)
                | (((imm >> 12) & 0xff) << 12)
                | ((rd.0 as u32) << 7)
                | 0b1101111
        }
        Instr::Jalr { rd, rs1, imm } => i_type(0b1100111, 0, rd, rs1, imm),
        Instr::Branch { op, rs1, rs2, imm } => {
            let funct3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            b_type(funct3, rs1, rs2, imm)
        }
        Instr::Load { op, rd, rs1, imm } => {
            let funct3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
            };
            i_type(0b0000011, funct3, rd, rs1, imm)
        }
        Instr::Store { op, rs1, rs2, imm } => {
            let funct3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
            };
            s_type(0b0100011, funct3, rs1, rs2, imm)
        }
        Instr::OpImm { op, rd, rs1, imm } => match op {
            AluOp::Add => i_type(0b0010011, 0b000, rd, rs1, imm),
            AluOp::Slt => i_type(0b0010011, 0b010, rd, rs1, imm),
            AluOp::Sltu => i_type(0b0010011, 0b011, rd, rs1, imm),
            AluOp::Xor => i_type(0b0010011, 0b100, rd, rs1, imm),
            AluOp::Or => i_type(0b0010011, 0b110, rd, rs1, imm),
            AluOp::And => i_type(0b0010011, 0b111, rd, rs1, imm),
            AluOp::Sll => {
                assert!((0..32).contains(&imm), "shift amount out of range");
                i_type(0b0010011, 0b001, rd, rs1, imm)
            }
            AluOp::Srl => {
                assert!((0..32).contains(&imm), "shift amount out of range");
                i_type(0b0010011, 0b101, rd, rs1, imm)
            }
            AluOp::Sra => {
                assert!((0..32).contains(&imm), "shift amount out of range");
                i_type(0b0010011, 0b101, rd, rs1, imm | 0x400)
            }
            AluOp::Sub => return Err(EncodeError::NoSubImmediate),
        },
        Instr::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, 0b0000000),
                AluOp::Sub => (0b000, 0b0100000),
                AluOp::Sll => (0b001, 0b0000000),
                AluOp::Slt => (0b010, 0b0000000),
                AluOp::Sltu => (0b011, 0b0000000),
                AluOp::Xor => (0b100, 0b0000000),
                AluOp::Srl => (0b101, 0b0000000),
                AluOp::Sra => (0b101, 0b0100000),
                AluOp::Or => (0b110, 0b0000000),
                AluOp::And => (0b111, 0b0000000),
            };
            r_type(funct7, funct3, rd, rs1, rs2)
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                MulOp::Mul => 0b000,
                MulOp::Mulh => 0b001,
                MulOp::Mulhsu => 0b010,
                MulOp::Mulhu => 0b011,
                MulOp::Div => 0b100,
                MulOp::Divu => 0b101,
                MulOp::Rem => 0b110,
                MulOp::Remu => 0b111,
            };
            r_type(0b0000001, funct3, rd, rs1, rs2)
        }
        Instr::Fence => 0x0000_000f,
        Instr::Ecall => 0x0000_0073,
        Instr::Ebreak => 0x0010_0073,
        Instr::Mret => 0x3020_0073,
        Instr::Wfi => 0x1050_0073,
        Instr::Csr { op, rd, csr, src } => {
            let base = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            let (funct3, rs1_field) = match src {
                CsrSrc::Reg(r) => (base, r.0 as u32),
                CsrSrc::Imm(v) => {
                    assert!(v < 32, "CSR immediate out of range");
                    (base | 0b100, v as u32)
                }
            };
            ((csr as u32) << 20)
                | (rs1_field << 15)
                | (funct3 << 12)
                | ((rd.0 as u32) << 7)
                | 0b1110011
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_known_words() {
        // addi a0, zero, 42
        assert_eq!(
            decode(0x02a0_0513).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg(10),
                rs1: Reg(0),
                imm: 42
            }
        );
        // lui t0, 0x12345
        assert_eq!(
            decode(0x1234_52b7).unwrap(),
            Instr::Lui {
                rd: Reg(5),
                imm: 0x12345
            }
        );
        // sw a1, 8(sp)
        assert_eq!(
            decode(0x00b1_2423).unwrap(),
            Instr::Store {
                op: StoreOp::Sw,
                rs1: Reg(2),
                rs2: Reg(11),
                imm: 8
            }
        );
        // beq a0, a1, +16
        let word = encode(Instr::Branch {
            op: BranchOp::Eq,
            rs1: Reg(10),
            rs2: Reg(11),
            imm: 16,
        })
        .unwrap();
        assert_eq!(
            decode(word).unwrap(),
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: Reg(10),
                rs2: Reg(11),
                imm: 16,
            }
        );
    }

    #[test]
    fn encode_decode_round_trip_samples() {
        let samples = [
            Instr::Lui {
                rd: Reg(1),
                imm: -1,
            },
            Instr::Auipc {
                rd: Reg(31),
                imm: 0x7ffff,
            },
            Instr::Jal {
                rd: Reg(1),
                imm: -2048,
            },
            Instr::Jalr {
                rd: Reg(0),
                rs1: Reg(1),
                imm: 0,
            },
            Instr::Branch {
                op: BranchOp::Geu,
                rs1: Reg(4),
                rs2: Reg(9),
                imm: -4096,
            },
            Instr::Load {
                op: LoadOp::Lbu,
                rd: Reg(7),
                rs1: Reg(8),
                imm: 2047,
            },
            Instr::Store {
                op: StoreOp::Sh,
                rs1: Reg(3),
                rs2: Reg(2),
                imm: -2048,
            },
            Instr::OpImm {
                op: AluOp::Sra,
                rd: Reg(5),
                rs1: Reg(5),
                imm: 31,
            },
            Instr::Op {
                op: AluOp::Sub,
                rd: Reg(10),
                rs1: Reg(11),
                rs2: Reg(12),
            },
            Instr::MulDiv {
                op: MulOp::Remu,
                rd: Reg(13),
                rs1: Reg(14),
                rs2: Reg(15),
            },
            Instr::Ecall,
            Instr::Ebreak,
            Instr::Mret,
            Instr::Wfi,
            Instr::Csr {
                op: CsrOp::Rs,
                rd: Reg(6),
                csr: 0x342,
                src: CsrSrc::Imm(5),
            },
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg(0),
                csr: 0x305,
                src: CsrSrc::Reg(Reg(7)),
            },
        ];
        for instr in samples {
            assert_eq!(decode(encode(instr).unwrap()).unwrap(), instr, "{instr:?}");
        }
    }

    #[test]
    fn sub_immediate_is_an_error_not_a_panic() {
        let err = encode(Instr::OpImm {
            op: AluOp::Sub,
            rd: Reg(10),
            rs1: Reg(10),
            imm: 1,
        })
        .unwrap_err();
        assert_eq!(err, EncodeError::NoSubImmediate);
        assert!(
            err.to_string().contains("addi"),
            "error should point at the fix"
        );
    }

    #[test]
    fn illegal_words_are_rejected() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_007f).is_err());
    }

    #[test]
    fn reg_parse_and_display() {
        assert_eq!(Reg::parse("a0"), Some(Reg(10)));
        assert_eq!(Reg::parse("x31"), Some(Reg(31)));
        assert_eq!(Reg::parse("fp"), Some(Reg(8)));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("bogus"), None);
        assert_eq!(Reg(10).to_string(), "a0");
    }
}
