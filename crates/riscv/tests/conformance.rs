//! RV32IM conformance vectors: the spec-mandated corner cases, each run
//! twice — once on a plain bus and once with the decoded-instruction cache
//! enabled — and required to agree exactly. The architectural answer comes
//! from the RISC-V unprivileged spec (division by zero and overflow have
//! *defined* results in RV32M, not traps), the cross-check from direct
//! 64-bit evaluation in Rust.
//!
//! The second half targets the decode cache's one hard obligation:
//! coherence with every path that can rewrite instruction memory
//! (self-modifying stores, host `load_image` reloads) and the rule that
//! undecodable words are never cached.

use rosebud_riscv::{assemble, AccessSize, Bus, Cpu, CpuFault, RamBus, Reg, StepResult};

fn r(name: &str) -> Reg {
    Reg::parse(name).expect("valid ABI register name")
}

/// Runs `source` to `ebreak` on both bus flavours and returns both CPUs,
/// asserting the runs halted the same way.
fn run_both(source: &str, max_steps: usize) -> (Cpu, RamBus, Cpu, RamBus) {
    let image = assemble(source).expect("conformance vector must assemble");
    let mut out = Vec::new();
    for cached in [false, true] {
        let mut bus = RamBus::new(64 * 1024);
        if cached {
            bus = bus.with_decode_cache();
        }
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        let mut halted = false;
        for _ in 0..max_steps {
            match cpu.step(&mut bus) {
                StepResult::Break => {
                    halted = true;
                    break;
                }
                StepResult::Fault(f) => panic!("unexpected fault {f:?} at pc {:#x}", cpu.pc()),
                _ => {}
            }
        }
        assert!(halted, "vector must reach ebreak (cached={cached})");
        out.push((cpu, bus));
    }
    let (c1, b1) = out.remove(0);
    let (c0, b0) = out.remove(0);
    (c1, b1, c0, b0)
}

/// Evaluates one R-type `op rd, rs1, rs2` on both bus flavours.
fn rtype(op: &str, rs1: u32, rs2: u32) -> u32 {
    let source = format!(
        "
        li a0, {a}
        li a1, {b}
        {op} a2, a0, a1
        ebreak
        ",
        a = rs1 as i32,
        b = rs2 as i32,
    );
    let (plain, _, cached, _) = run_both(&source, 100);
    let (p, c) = (plain.reg(r("a2")), cached.reg(r("a2")));
    assert_eq!(p, c, "{op} {rs1:#x},{rs2:#x}: cached bus diverged");
    p
}

#[test]
fn div_rem_by_zero_and_overflow() {
    // Division by zero: quotient all-ones, remainder the dividend.
    for a in [0u32, 1, 57, 0x8000_0000, u32::MAX] {
        assert_eq!(rtype("div", a, 0), u32::MAX, "div {a:#x}/0");
        assert_eq!(rtype("divu", a, 0), u32::MAX, "divu {a:#x}/0");
        assert_eq!(rtype("rem", a, 0), a, "rem {a:#x}%0");
        assert_eq!(rtype("remu", a, 0), a, "remu {a:#x}%0");
    }
    // Signed overflow: MIN / -1 = MIN, MIN % -1 = 0 (no trap).
    assert_eq!(rtype("div", 0x8000_0000, u32::MAX), 0x8000_0000);
    assert_eq!(rtype("rem", 0x8000_0000, u32::MAX), 0);
    // And the unsigned view of the same bits is ordinary division.
    assert_eq!(rtype("divu", 0x8000_0000, u32::MAX), 0);
    assert_eq!(rtype("remu", 0x8000_0000, u32::MAX), 0x8000_0000);
}

#[test]
fn div_rem_ordinary_quotients() {
    for (a, b) in [
        (7i32, 2i32),
        (-7, 2),
        (7, -2),
        (-7, -2),
        (0, 5),
        (1, i32::MAX),
    ] {
        assert_eq!(
            rtype("div", a as u32, b as u32),
            a.wrapping_div(b) as u32,
            "div {a}/{b}"
        );
        assert_eq!(
            rtype("rem", a as u32, b as u32),
            a.wrapping_rem(b) as u32,
            "rem {a}%{b}"
        );
    }
    for (a, b) in [(7u32, 2u32), (u32::MAX, 2), (0x8000_0000, 3), (1, u32::MAX)] {
        assert_eq!(rtype("divu", a, b), a / b, "divu {a}/{b}");
        assert_eq!(rtype("remu", a, b), a % b, "remu {a}%{b}");
    }
}

#[test]
fn mulh_sign_combinations() {
    // Every sign/extreme pairing of the three upper-half multiplies,
    // cross-checked against 64-bit arithmetic.
    let values = [
        0u32,
        1,
        2,
        0x7fff_ffff,
        0x8000_0000,
        0x8000_0001,
        0xffff_ffff,
        0x0001_0000,
        0xdead_beef,
    ];
    for &a in &values {
        for &b in &values {
            let mulh = ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32;
            let mulhsu = ((i64::from(a as i32).wrapping_mul(u64::from(b) as i64)) >> 32) as u32;
            let mulhu = ((u64::from(a) * u64::from(b)) >> 32) as u32;
            let mul = a.wrapping_mul(b);
            assert_eq!(rtype("mulh", a, b), mulh, "mulh {a:#x},{b:#x}");
            assert_eq!(rtype("mulhsu", a, b), mulhsu, "mulhsu {a:#x},{b:#x}");
            assert_eq!(rtype("mulhu", a, b), mulhu, "mulhu {a:#x},{b:#x}");
            assert_eq!(rtype("mul", a, b), mul, "mul {a:#x},{b:#x}");
        }
    }
}

#[test]
fn misaligned_loads_and_stores_are_byte_exact() {
    // This core (like the soft cores it models) services misaligned data
    // accesses little-endian byte-by-byte rather than trapping; the cached
    // and uncached buses must agree on every overlap.
    let source = "
        li t0, 0x100
        li a0, 0x04030201
        li a1, 0x08070605
        sw a0, 0(t0)
        sw a1, 4(t0)
        lw a2, 2(t0)         # straddles both words: 0x06050403
        lhu a3, 1(t0)        # 0x0302
        lh a4, 3(t0)         # 0x0504 sign-extends positive
        lbu a5, 5(t0)        # 0x06
        li a6, 0xAABBCCDD
        sw a6, 9(t0)         # misaligned store
        lw a7, 9(t0)
        lbu t1, 8(t0)        # byte below the store is untouched (zero)
        ebreak
    ";
    let (plain, pbus, cached, cbus) = run_both(source, 100);
    for (cpu, name) in [(&plain, "plain"), (&cached, "cached")] {
        assert_eq!(cpu.reg(r("a2")), 0x0605_0403, "{name}: straddling lw");
        assert_eq!(cpu.reg(r("a3")), 0x0302, "{name}: odd lhu");
        assert_eq!(cpu.reg(r("a4")), 0x0504, "{name}: odd lh");
        assert_eq!(cpu.reg(r("a5")), 0x06, "{name}: lbu");
        assert_eq!(
            cpu.reg(r("a7")),
            0xAABB_CCDD,
            "{name}: misaligned sw round-trip"
        );
        assert_eq!(cpu.reg(r("t1")), 0, "{name}: neighbour byte untouched");
    }
    assert_eq!(
        pbus.mem()[0x100..0x110],
        cbus.mem()[0x100..0x110],
        "memory images must match"
    );
}

#[test]
fn out_of_range_access_faults_identically() {
    for cached in [false, true] {
        let image = assemble("li t0, 0x7ffffff0\nlw a0, 0(t0)\nebreak").unwrap();
        let mut bus = RamBus::new(4096);
        if cached {
            bus = bus.with_decode_cache();
        }
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        let fault = loop {
            match cpu.step(&mut bus) {
                StepResult::Fault(f) => break f,
                StepResult::Break => panic!("must fault, not halt (cached={cached})"),
                _ => {}
            }
        };
        match fault {
            CpuFault::Bus(b) => {
                assert_eq!(b.addr, 0x7fff_fff0, "cached={cached}");
                assert!(!b.is_store, "cached={cached}");
            }
            other => panic!("expected bus fault, got {other:?} (cached={cached})"),
        }
    }
}

/// Steps until `ebreak`, then clears the halt by re-pointing the PC.
fn step_to_break(cpu: &mut Cpu, bus: &mut RamBus, max: usize) {
    for _ in 0..max {
        if matches!(cpu.step(bus), StepResult::Break) {
            return;
        }
    }
    panic!("never reached ebreak");
}

#[test]
fn decode_cache_sees_self_modifying_stores() {
    // The program patches its own hot path: an `addi a0, a0, 1` is executed,
    // then overwritten in place with `addi a0, a0, 64` by a store, then
    // executed again. With a warm decode cache the store must invalidate the
    // cached decode; the final a0 proves which decode ran.
    let patch = assemble("addi a0, a0, 64").unwrap().words()[0];
    let source = format!(
        "
            li a0, 0
            li t0, patchme       # address of the patch target
            li t1, {patch}       # the replacement instruction word
            jal ra, site
            sw t1, 0(t0)         # rewrite imem
            jal ra, site
            ebreak
        site:
        patchme:
            addi a0, a0, 1
            jalr zero, ra, 0
        "
    );
    let (plain, _, cached, cbus) = run_both(&source, 200);
    assert_eq!(plain.reg(r("a0")), 65, "plain bus: 1 + 64");
    assert_eq!(cached.reg(r("a0")), 65, "stale cached decode executed");
    let stats = cbus.decode_cache_stats().expect("cache enabled");
    assert!(stats.invalidations > 0, "the imem store must invalidate");
}

#[test]
fn decode_cache_sees_host_rewritten_imem() {
    // Host-side reload: run a loop hot (cache warm), then `load_image` a
    // different program over the same addresses — the documented host
    // firmware-reload path, which must invalidate + re-predecode.
    let v1 = assemble("li a0, 111\nebreak").unwrap();
    let v2 = assemble("li a0, 222\nebreak").unwrap();
    let mut bus = RamBus::new(4096).with_decode_cache();
    bus.load_image(0, v1.words());
    let mut cpu = Cpu::new(0);
    step_to_break(&mut cpu, &mut bus, 50);
    assert_eq!(cpu.reg(r("a0")), 111);

    bus.load_image(0, v2.words());
    let mut cpu = Cpu::new(0);
    step_to_break(&mut cpu, &mut bus, 50);
    assert_eq!(cpu.reg(r("a0")), 222, "stale decode survived host reload");
}

#[test]
fn illegal_words_are_never_cached() {
    // An undecodable word faults with the exact pc/word on both buses, and
    // because illegal words are never cached, patching the word afterwards
    // makes the same pc execute the new instruction.
    let illegal = 0xffff_ffffu32;
    for cached in [false, true] {
        let boot = assemble("li a0, 5\nnop\nebreak").unwrap();
        let mut bus = RamBus::new(4096);
        if cached {
            bus = bus.with_decode_cache();
        }
        bus.load_image(0, boot.words());
        // Overwrite the `nop` (third word: li expands to two) with garbage.
        let nop_at = (boot.words().len() as u32 - 2) * 4;
        bus.store(nop_at, illegal, AccessSize::Word).unwrap();
        let mut cpu = Cpu::new(0);
        let fault = loop {
            match cpu.step(&mut bus) {
                StepResult::Fault(f) => break f,
                StepResult::Break => panic!("must fault first (cached={cached})"),
                _ => {}
            }
        };
        assert_eq!(
            fault,
            CpuFault::IllegalInstruction {
                pc: nop_at,
                word: illegal
            },
            "cached={cached}"
        );
        // Patch the word back to a real instruction and re-run from scratch:
        // a cached illegal decode would fault again here.
        let addi = assemble("addi a0, a0, 3").unwrap().words()[0];
        bus.store(nop_at, addi, AccessSize::Word).unwrap();
        let mut cpu = Cpu::new(0);
        step_to_break(&mut cpu, &mut bus, 50);
        assert_eq!(cpu.reg(r("a0")), 8, "5 + 3 after patch (cached={cached})");
    }
}

#[test]
fn fetch_from_misaligned_pc_agrees_across_buses() {
    // `jalr` clears only bit 0, so a pc with bit 1 set is architecturally
    // reachable. The decode cache does not cover misaligned fetches; both
    // buses must still decode the same (re-aligned byte stream) word.
    let source = "
        li a0, 0
        li t0, target
        addi t0, t0, 2       # bit 1 set: stays after jalr masks bit 0
        jalr ra, t0, 0
    target:
        .word 0x00000013     # nop; the +2 fetch reads into the next word
        li a0, 77
        ebreak
    ";
    let image = assemble(source);
    // The assembler may reject `.word`; fall back to pure-instruction form.
    let source_owned;
    let src = if image.is_ok() {
        source
    } else {
        source_owned = "
        li a0, 0
        li t0, target
        jalr ra, t0, 1       # odd target: bit 0 cleared -> aligned
    target:
        li a0, 77
        ebreak
        "
        .to_string();
        &source_owned
    };
    let image = assemble(src).expect("fallback must assemble");
    let mut results = Vec::new();
    for cached in [false, true] {
        let mut bus = RamBus::new(4096);
        if cached {
            bus = bus.with_decode_cache();
        }
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        let mut outcome = None;
        for _ in 0..100 {
            match cpu.step(&mut bus) {
                StepResult::Break => {
                    outcome = Some(Ok(cpu.reg(r("a0"))));
                    break;
                }
                StepResult::Fault(f) => {
                    outcome = Some(Err(format!("{f:?}")));
                    break;
                }
                _ => {}
            }
        }
        results.push(outcome.expect("must halt or fault"));
    }
    assert_eq!(
        results[0], results[1],
        "misaligned fetch diverged across buses"
    );
}
