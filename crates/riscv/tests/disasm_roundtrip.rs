//! Round-trip coverage for the disassembler: every opcode the assembler can
//! emit must decode, re-encode to the identical word, and disassemble into
//! text the assembler accepts back to the same word. This is what makes the
//! §3.4 debug dumps trustworthy — a listing you cannot reassemble is a
//! listing you cannot trust.

use rosebud_riscv::{assemble, decode, disassemble, encode};

/// One canonical instance of every mnemonic (real and pseudo) the assembler
/// handles. Pseudo-instructions expand to base opcodes, so this sweeps every
/// encodable instruction form through the decode/disasm/asm loop.
const CANONICAL: &[&str] = &[
    // U/J/I-type primaries
    "lui t0, 8192",
    "lui t1, -1",
    "auipc a0, 16",
    "jal ra, 2048",
    "jal zero, -44",
    "jalr ra, t0, 8",
    "jalr zero, ra, 0",
    // branches (direct and swapped-operand pseudo forms)
    "beq a0, a1, 16",
    "bne a0, a1, -16",
    "blt s0, s1, 32",
    "bge s0, s1, -32",
    "bltu t3, t4, 64",
    "bgeu t3, t4, -64",
    "bgt a0, a1, 16",
    "ble a0, a1, 16",
    "bgtu a0, a1, 16",
    "bleu a0, a1, 16",
    "beqz a0, 8",
    "bnez a1, -8",
    "bltz a2, 12",
    "bgez a3, -12",
    "bgtz a4, 20",
    "blez a5, -20",
    // loads and stores, signed/unsigned, all widths
    "lb a0, 0(sp)",
    "lh a1, 2(sp)",
    "lw a2, 4(sp)",
    "lbu a3, -1(s0)",
    "lhu a4, 6(gp)",
    "sb a0, 0(sp)",
    "sh a1, 2(sp)",
    "sw a2, -4(s0)",
    // ALU immediate (with negative and boundary immediates)
    "addi a0, a1, -2048",
    "addi a0, a1, 2047",
    "slti t0, t1, -5",
    "sltiu t0, t1, 5",
    "xori s2, s3, 255",
    "ori s4, s5, -256",
    "andi s6, s7, 15",
    "slli a0, a0, 1",
    "slli a0, a0, 31",
    "srli a1, a1, 16",
    "srai a2, a2, 7",
    // ALU register
    "add a0, a1, a2",
    "sub t0, t1, t2",
    "sll s0, s1, s2",
    "slt a3, a4, a5",
    "sltu a6, a7, t0",
    "xor t3, t4, t5",
    "srl t6, s0, s1",
    "sra s2, s3, s4",
    "or s5, s6, s7",
    "and s8, s9, s10",
    // M extension
    "mul a0, a1, a2",
    "mulh a3, a4, a5",
    "mulhsu t0, t1, t2",
    "mulhu t3, t4, t5",
    "div s0, s1, s2",
    "divu s3, s4, s5",
    "rem s6, s7, s8",
    "remu s9, s10, s11",
    // system
    "fence",
    "ecall",
    "ebreak",
    "mret",
    "wfi",
    // CSR, register and immediate forms, named and numeric CSRs
    "csrrw t0, mtvec, t1",
    "csrrs t2, mstatus, t3",
    "csrrc t4, mie, t5",
    "csrrwi a0, mscratch, 31",
    "csrrsi a1, mip, 1",
    "csrrci a2, mcause, 0",
    "csrrw zero, 773, t3",
    // pseudo-instructions (expand to the base forms above)
    "nop",
    "li a0, 42",
    "li a1, -1",
    "li a2, 0x02000000",
    "mv a0, a1",
    "not a2, a3",
    "neg a4, a5",
    "seqz a6, a7",
    "snez t0, t1",
    "j 16",
    "jr t0",
    "ret",
    "csrr a0, mcycle",
    "csrw mtvec, t0",
    "csrs mie, t1",
    "csrc mip, t2",
    "csrwi mscratch, 7",
    "csrsi mstatus, 8",
    "csrci mie, 2",
];

#[test]
fn every_assembler_opcode_round_trips_through_the_disassembler() {
    for src in CANONICAL {
        let image = assemble(src).unwrap_or_else(|e| panic!("{src:?} must assemble: {e:?}"));
        let words = image.words();
        assert!(!words.is_empty(), "{src:?} emitted no code");
        for (i, &word) in words.iter().enumerate() {
            let instr =
                decode(word).unwrap_or_else(|e| panic!("{src:?} word {i} must decode: {e:?}"));
            assert_eq!(
                encode(instr),
                Ok(word),
                "{src:?} word {i}: encode(decode(w)) must be the identity"
            );
            let text = disassemble(instr);
            // Re-assemble the listing at the same pc offset so pc-relative
            // immediates resolve identically.
            let reasm = assemble(&format!(".org {}\n{text}", 4 * i))
                .unwrap_or_else(|e| panic!("{src:?}: disassembly {text:?} must reassemble: {e:?}"));
            assert_eq!(
                reasm.words().last().copied(),
                Some(word),
                "{src:?}: {text:?} must reassemble to {word:#010x}"
            );
        }
    }
}

#[test]
fn disassembler_output_is_stable_for_key_forms() {
    let check = |src: &str, expect: &str| {
        let word = assemble(src).unwrap().words()[0];
        assert_eq!(disassemble(decode(word).unwrap()), expect, "for {src:?}");
    };
    check("lw a0, 0(t0)", "lw a0, 0(t0)");
    check("addi s0, zero, 0", "addi s0, zero, 0");
    check("beqz a0, -8", "beq a0, zero, -8");
    check("j -44", "jal zero, -44");
    check("ebreak", "ebreak");
}

#[test]
fn subi_is_rejected_with_guidance() {
    let err = assemble("subi a0, a0, 1").expect_err("subi must not assemble");
    let msg = format!("{err:?}");
    assert!(
        msg.contains("does not exist in RV32"),
        "the rejection must explain itself: {msg}"
    );
    assert!(
        msg.contains("addi"),
        "the rejection must point at the fix: {msg}"
    );
}
