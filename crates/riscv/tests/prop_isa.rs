//! Property tests on the instruction set: encode/decode identity, the
//! decoder's totality over random words, and assembler/disassembler
//! round-trips.

use proptest::prelude::*;
use rosebud_riscv::{
    assemble, decode, disassemble, encode, AluOp, BranchOp, CsrOp, CsrSrc, Instr, LoadOp, MulOp,
    Reg, StoreOp,
};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ];
    let alu_rr = prop_oneof![alu.clone(), Just(AluOp::Sub)];
    prop_oneof![
        (reg_strategy(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (reg_strategy(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Auipc { rd, imm }),
        (
            reg_strategy(),
            (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2)
        )
            .prop_map(|(rd, imm)| Instr::Jal { rd, imm }),
        (reg_strategy(), reg_strategy(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instr::Jalr {
            rd,
            rs1,
            imm
        }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            reg_strategy(),
            reg_strategy(),
            (-2048i32..2048).prop_map(|x| x * 2)
        )
            .prop_map(|(op, rs1, rs2, imm)| Instr::Branch { op, rs1, rs2, imm }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            reg_strategy(),
            reg_strategy(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::Load { op, rd, rs1, imm }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            reg_strategy(),
            reg_strategy(),
            -2048i32..2048
        )
            .prop_map(|(op, rs1, rs2, imm)| Instr::Store { op, rs1, rs2, imm }),
        (alu.clone(), reg_strategy(), reg_strategy(), 0i32..32).prop_map(|(op, rd, rs1, shamt)| {
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => shamt,
                _ => shamt * 64 - 1024, // any in-range immediate
            };
            Instr::OpImm { op, rd, rs1, imm }
        }),
        (alu_rr, reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(MulOp::Mul),
                Just(MulOp::Mulh),
                Just(MulOp::Mulhsu),
                Just(MulOp::Mulhu),
                Just(MulOp::Div),
                Just(MulOp::Divu),
                Just(MulOp::Rem),
                Just(MulOp::Remu)
            ],
            reg_strategy(),
            reg_strategy(),
            reg_strategy()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::Mret),
        Just(Instr::Wfi),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            reg_strategy(),
            0u16..4096,
            prop_oneof![
                reg_strategy().prop_map(CsrSrc::Reg),
                (0u8..32).prop_map(CsrSrc::Imm)
            ]
        )
            .prop_map(|(op, rd, csr, src)| Instr::Csr { op, rd, csr, src }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_identity(instr in instr_strategy()) {
        prop_assert_eq!(decode(encode(instr).unwrap()).unwrap(), instr);
    }

    #[test]
    fn decoder_never_panics(word in any::<u32>()) {
        let _ = decode(word); // Ok or Err, never a panic
    }

    #[test]
    fn decoded_words_reencode_identically(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Encoding a decoded instruction reproduces a word that decodes
            // to the same instruction (canonical form; unused bits may
            // differ for fence).
            prop_assert_eq!(decode(encode(instr).unwrap()).unwrap(), instr);
        }
    }

    #[test]
    fn disassembly_reassembles(instr in instr_strategy()) {
        // Branch/jump targets are pc-relative in the text, so skip those
        // (covered by unit tests); everything else must round-trip through
        // text.
        match instr {
            Instr::Branch { .. } | Instr::Jal { .. } => {}
            _ => {
                let text = disassemble(instr);
                let image = assemble(&text)
                    .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
                prop_assert_eq!(image.words().len(), 1, "{}", text);
                prop_assert_eq!(decode(image.words()[0]).unwrap(), instr, "{}", text);
            }
        }
    }
}
