//! Differential testing of the execution engine: random straight-line
//! ALU/M programs run on the [`Cpu`] must agree with a direct Rust
//! evaluation of the same operations, and a battery of classic routines
//! (memcpy, strlen, CRC-32, quicksort-ish partition) must produce the right
//! answers through the assembler + ISS pipeline.

use proptest::prelude::*;
use rosebud_riscv::{assemble, Cpu, RamBus, Reg, StepResult};

#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    Xor,
    Or,
    And,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Div,
    Rem,
}

impl Op {
    fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Xor => "xor",
            Op::Or => "or",
            Op::And => "and",
            Op::Sll => "sll",
            Op::Srl => "srl",
            Op::Sra => "sra",
            Op::Slt => "slt",
            Op::Sltu => "sltu",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
        }
    }

    fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
            Op::Xor => a ^ b,
            Op::Or => a | b,
            Op::And => a & b,
            Op::Sll => a << (b & 31),
            Op::Srl => a >> (b & 31),
            Op::Sra => ((a as i32) >> (b & 31)) as u32,
            Op::Slt => u32::from((a as i32) < (b as i32)),
            Op::Sltu => u32::from(a < b),
            Op::Mul => a.wrapping_mul(b),
            Op::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32) / (b as i32)) as u32
                }
            }
            Op::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                }
            }
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Xor),
        Just(Op::Or),
        Just(Op::And),
        Just(Op::Sll),
        Just(Op::Srl),
        Just(Op::Sra),
        Just(Op::Slt),
        Just(Op::Sltu),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Rem),
    ]
}

proptest! {
    /// Random straight-line programs over registers a0–a7: the ISS must
    /// compute exactly what direct evaluation computes.
    #[test]
    fn iss_agrees_with_direct_evaluation(
        seeds in proptest::collection::vec(any::<u32>(), 8),
        ops in proptest::collection::vec(
            (op_strategy(), 0usize..8, 0usize..8, 0usize..8),
            1..40
        ),
    ) {
        // Build the program: seed a0..a7, then the op sequence.
        let regs = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"];
        let mut source = String::new();
        for (r, v) in regs.iter().zip(&seeds) {
            source.push_str(&format!("li {r}, {}\n", *v as i32));
        }
        for (op, rd, rs1, rs2) in &ops {
            source.push_str(&format!(
                "{} {}, {}, {}\n",
                op.mnemonic(), regs[*rd], regs[*rs1], regs[*rs2]
            ));
        }
        source.push_str("ebreak\n");

        // Golden model.
        let mut model: Vec<u32> = seeds.clone();
        for (op, rd, rs1, rs2) in &ops {
            model[*rd] = op.eval(model[*rs1], model[*rs2]);
        }

        // ISS.
        let image = assemble(&source).expect("generated program assembles");
        let mut bus = RamBus::new(64 * 1024);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        for _ in 0..10_000 {
            if matches!(cpu.step(&mut bus), StepResult::Break) {
                break;
            }
        }
        for (i, r) in regs.iter().enumerate() {
            prop_assert_eq!(
                cpu.reg(Reg::parse(r).unwrap()),
                model[i],
                "register {} after {:?}", r, ops
            );
        }
    }
}

fn run_to_break(source: &str, steps: usize) -> (Cpu, RamBus) {
    let image = assemble(source).expect("program assembles");
    let mut bus = RamBus::new(64 * 1024);
    bus.load_image(0, image.words());
    let mut cpu = Cpu::new(0);
    for _ in 0..steps {
        match cpu.step(&mut bus) {
            StepResult::Break => return (cpu, bus),
            StepResult::Fault(f) => panic!("fault: {f:?} at pc {:#x}", cpu.pc()),
            _ => {}
        }
    }
    panic!("program did not finish in {steps} steps");
}

#[test]
fn memcpy_routine() {
    let (_, bus) = run_to_break(
        "
            j start
        src:
            .byte 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13
        start:
            li a0, 0x4000        # dst
            li a1, src
            li a2, 13            # len
        copy:
            beqz a2, done
            lbu t0, 0(a1)
            sb t0, 0(a0)
            addi a0, a0, 1
            addi a1, a1, 1
            addi a2, a2, -1
            j copy
        done:
            ebreak
        ",
        1000,
    );
    assert_eq!(
        &bus.mem()[0x4000..0x400d],
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]
    );
}

#[test]
fn strlen_routine() {
    let (cpu, _) = run_to_break(
        "
            j start
        msg:
            .asciz \"rosebud at 200 gbps\"
        start:
            li a0, msg
            li a1, 0
        scan:
            lbu t0, 0(a0)
            beqz t0, done
            addi a0, a0, 1
            addi a1, a1, 1
            j scan
        done:
            ebreak
        ",
        1000,
    );
    assert_eq!(cpu.reg(Reg::parse("a1").unwrap()), 19);
}

#[test]
fn crc32_routine_matches_reference() {
    // Bitwise CRC-32 (IEEE 802.3 polynomial, reflected) over 8 bytes.
    let data: [u8; 8] = [0x52, 0x6f, 0x73, 0x65, 0x62, 0x75, 0x64, 0x21]; // "Rosebud!"
    fn reference(data: &[u8]) -> u32 {
        let mut crc = 0xffff_ffffu32;
        for &b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }
    let (cpu, _) = run_to_break(
        "
            j start
        data:
            .byte 0x52, 0x6f, 0x73, 0x65, 0x62, 0x75, 0x64, 0x21
        start:
            li a0, data
            li a1, 8
            li a2, -1            # crc = 0xffffffff
            li a4, 0xedb88320
        next_byte:
            beqz a1, finish
            lbu t0, 0(a0)
            xor a2, a2, t0
            li t1, 8
        next_bit:
            andi t2, a2, 1
            srli a2, a2, 1
            beqz t2, skip
            xor a2, a2, a4
        skip:
            addi t1, t1, -1
            bnez t1, next_bit
            addi a0, a0, 1
            addi a1, a1, -1
            j next_byte
        finish:
            not a2, a2
            ebreak
        ",
        5000,
    );
    assert_eq!(cpu.reg(Reg::parse("a2").unwrap()), reference(&data));
}

#[test]
fn recursive_factorial_uses_the_stack() {
    let (cpu, _) = run_to_break(
        "
            li sp, 0x8000
            li a0, 8
            call fact
            ebreak
        fact:
            li t0, 2
            bltu a0, t0, base
            addi sp, sp, -8
            sw ra, 0(sp)
            sw a0, 4(sp)
            addi a0, a0, -1
            call fact
            lw t1, 4(sp)
            lw ra, 0(sp)
            addi sp, sp, 8
            mul a0, a0, t1
            ret
        base:
            li a0, 1
            ret
        ",
        5000,
    );
    assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 40_320);
}
