//! The packet type carried through the simulated datapath.

use rosebud_kernel::Cycle;

use crate::headers::{
    EthHeader, Ipv4Header, TcpHeader, UdpHeader, ETH_HEADER_LEN, IPV4_HEADER_LEN,
};
use crate::{wire_bytes, HeaderError, IpProtocol};

/// A unique, monotonically assigned packet identifier used by conservation
/// checks ("every packet in is a packet out or an accounted drop").
pub type PacketId = u64;

/// A packet travelling through the simulated system.
///
/// Carries the raw frame bytes plus simulation metadata: the generating
/// cycle (for RTT measurement, §6.2), the ingress port, and the identifier.
///
/// # Examples
///
/// ```
/// use rosebud_net::Packet;
/// let pkt = Packet::new(1, vec![0u8; 64], 0, 0);
/// assert_eq!(pkt.len(), 64);
/// assert_eq!(pkt.wire_len(), 88); // preamble + FCS + IFG
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Raw frame contents starting at the Ethernet header (FCS excluded, as
    /// in the paper's size accounting).
    pub data: Vec<u8>,
    /// Port the packet entered the system on (or will leave on).
    pub port: u8,
    /// Cycle at which the packet was created by the traffic source; the
    /// tester FPGA's timestamp (§6.2).
    pub ts_gen: Cycle,
}

impl Packet {
    /// Creates a packet from raw bytes.
    pub fn new(id: PacketId, data: Vec<u8>, port: u8, ts_gen: Cycle) -> Self {
        Self {
            id,
            data,
            port,
            ts_gen,
        }
    }

    /// Frame length in bytes (FCS excluded).
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// `true` for a zero-length frame (used as a drop marker in firmware,
    /// which sets the descriptor length to 0 to drop, §7.2).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes occupied on the wire, including preamble, FCS and IFG.
    pub fn wire_len(&self) -> u64 {
        wire_bytes(self.len())
    }

    /// The raw frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw frame bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Parses the Ethernet header.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError`] when the frame is shorter than 14 bytes.
    pub fn eth(&self) -> Result<EthHeader, HeaderError> {
        EthHeader::parse(&self.data)
    }

    /// Parses the IPv4 header following the Ethernet header.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError`] when the frame is truncated or not IPv4.
    pub fn ipv4(&self) -> Result<Ipv4Header, HeaderError> {
        if self.data.len() < ETH_HEADER_LEN {
            return Err(HeaderError::Truncated {
                need: ETH_HEADER_LEN,
                have: self.data.len(),
            });
        }
        Ipv4Header::parse(&self.data[ETH_HEADER_LEN..])
    }

    /// Parses the TCP header of a TCP/IPv4 packet.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError`] when the frame is truncated or the protocol is
    /// not TCP.
    pub fn tcp(&self) -> Result<TcpHeader, HeaderError> {
        let ip = self.ipv4()?;
        if ip.protocol != IpProtocol::TCP {
            return Err(HeaderError::Malformed("not a TCP packet"));
        }
        TcpHeader::parse(&self.data[ETH_HEADER_LEN + IPV4_HEADER_LEN..])
    }

    /// Parses the UDP header of a UDP/IPv4 packet.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError`] when the frame is truncated or the protocol is
    /// not UDP.
    pub fn udp(&self) -> Result<UdpHeader, HeaderError> {
        let ip = self.ipv4()?;
        if ip.protocol != IpProtocol::UDP {
            return Err(HeaderError::Malformed("not a UDP packet"));
        }
        UdpHeader::parse(&self.data[ETH_HEADER_LEN + IPV4_HEADER_LEN..])
    }

    /// Byte offset of the L4 payload, if the packet is TCP or UDP over IPv4.
    pub fn payload_offset(&self) -> Option<usize> {
        let ip = self.ipv4().ok()?;
        match ip.protocol {
            IpProtocol::TCP => Some(ETH_HEADER_LEN + IPV4_HEADER_LEN + 20),
            IpProtocol::UDP => Some(ETH_HEADER_LEN + IPV4_HEADER_LEN + 8),
            _ => None,
        }
    }

    /// The L4 payload bytes, if the packet is TCP or UDP over IPv4.
    pub fn payload(&self) -> Option<&[u8]> {
        let off = self.payload_offset()?;
        self.data.get(off..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn payload_offset_tcp_vs_udp() {
        let tcp = PacketBuilder::new().tcp(1, 2).payload(b"abc").build();
        assert_eq!(tcp.payload_offset(), Some(54));
        assert_eq!(tcp.payload().unwrap(), b"abc");
        let udp = PacketBuilder::new().udp(1, 2).payload(b"xyz").build();
        assert_eq!(udp.payload_offset(), Some(42));
        assert_eq!(udp.payload().unwrap(), b"xyz");
    }

    #[test]
    fn non_ip_has_no_payload() {
        let pkt = Packet::new(0, vec![0u8; 64], 0, 0);
        assert_eq!(pkt.payload_offset(), None);
    }

    #[test]
    fn wrong_protocol_errors() {
        let udp = PacketBuilder::new().udp(1, 2).build();
        assert!(udp.tcp().is_err());
        let tcp = PacketBuilder::new().tcp(1, 2).build();
        assert!(tcp.udp().is_err());
    }
}
