//! In-memory packet traces.

use crate::gen::TrafficGen;
use crate::packet::Packet;

/// An ordered collection of packets — the in-memory analogue of the pcap
/// traces the paper's scripts generate and replay (Appendix D).
///
/// # Examples
///
/// ```
/// use rosebud_net::{FixedSizeGen, Trace};
/// let trace = Trace::from_gen(&mut FixedSizeGen::new(64, 2), 100);
/// assert_eq!(trace.len(), 100);
/// assert_eq!(trace.total_bytes(), 6400);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    packets: Vec<Packet>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures `count` packets from a generator, with ids 0..count and a
    /// zero generation timestamp.
    pub fn from_gen<G: TrafficGen>(gen: &mut G, count: usize) -> Self {
        let packets = (0..count).map(|i| gen.generate(i as u64, 0)).collect();
        Self { packets }
    }

    /// Appends a packet.
    pub fn push(&mut self, pkt: Packet) {
        self.packets.push(pkt);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Sum of in-memory frame lengths.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(Packet::len).sum()
    }

    /// Sum of wire lengths (including preamble/FCS/IFG).
    pub fn total_wire_bytes(&self) -> u64 {
        self.packets.iter().map(Packet::wire_len).sum()
    }

    /// The packets, in order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Iterates over the packets.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl FromIterator<Packet> for Trace {
    fn from_iter<I: IntoIterator<Item = Packet>>(iter: I) -> Self {
        Self {
            packets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Packet> for Trace {
    fn extend<I: IntoIterator<Item = Packet>>(&mut self, iter: I) {
        self.packets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FixedSizeGen;

    #[test]
    fn from_gen_assigns_sequential_ids() {
        let trace = Trace::from_gen(&mut FixedSizeGen::new(64, 2), 10);
        for (i, pkt) in trace.iter().enumerate() {
            assert_eq!(pkt.id, i as u64);
        }
    }

    #[test]
    fn collect_and_extend() {
        let mut gen = FixedSizeGen::new(64, 1);
        let mut trace: Trace = (0..5).map(|i| gen.generate(i, 0)).collect();
        trace.extend((5..8).map(|i| gen.generate(i, 0)));
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.total_wire_bytes(), 8 * 88);
    }
}
