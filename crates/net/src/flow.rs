//! 5-tuple flow identification and hashing.

use crate::packet::Packet;
use crate::{IpProtocol, ETH_HEADER_LEN, IPV4_HEADER_LEN};

/// A 5-tuple flow key.
///
/// The hash-based load balancer in the Pigasus case study computes a 32-bit
/// hash of this tuple inline and prepends it to each packet so the firmware
/// can reuse it without recomputation (§7.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IPv4 address (host order).
    pub src_ip: u32,
    /// Destination IPv4 address (host order).
    pub dst_ip: u32,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Extracts the flow key from a TCP or UDP over IPv4 packet. Returns
    /// `None` for anything else.
    pub fn of(pkt: &Packet) -> Option<Self> {
        let ip = pkt.ipv4().ok()?;
        let l4 = pkt.bytes().get(ETH_HEADER_LEN + IPV4_HEADER_LEN..)?;
        if l4.len() < 4 {
            return None;
        }
        if ip.protocol != IpProtocol::TCP && ip.protocol != IpProtocol::UDP {
            return None;
        }
        Some(Self {
            src_ip: ip.src_u32(),
            dst_ip: ip.dst_u32(),
            src_port: u16::from_be_bytes([l4[0], l4[1]]),
            dst_port: u16::from_be_bytes([l4[2], l4[3]]),
            protocol: ip.protocol.0,
        })
    }

    /// The 32-bit flow hash of this key.
    pub fn hash(&self) -> u32 {
        let mut h = FNV_OFFSET;
        for b in self
            .src_ip
            .to_be_bytes()
            .into_iter()
            .chain(self.dst_ip.to_be_bytes())
            .chain(self.src_port.to_be_bytes())
            .chain(self.dst_port.to_be_bytes())
            .chain([self.protocol])
        {
            h ^= u32::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // A final avalanche so low bits are well mixed: the LB keys RPUs off
        // only 3–4 bits of the hash (§7.1.2).
        h ^= h >> 16;
        h = h.wrapping_mul(0x7feb_352d);
        h ^= h >> 15;
        h
    }
}

const FNV_OFFSET: u32 = 0x811c_9dc5;
const FNV_PRIME: u32 = 0x0100_0193;

/// Convenience: the flow hash of a packet, or `None` for non-TCP/UDP frames.
///
/// # Examples
///
/// ```
/// use rosebud_net::{flow_hash, PacketBuilder};
/// let a = PacketBuilder::new().tcp(1000, 80).build();
/// let b = PacketBuilder::new().tcp(1000, 80).payload(b"different body").build();
/// assert_eq!(flow_hash(&a), flow_hash(&b)); // same flow, same hash
/// ```
pub fn flow_hash(pkt: &Packet) -> Option<u32> {
    FlowKey::of(pkt).map(|k| k.hash())
}

/// Extends a 32-bit flow hash to 64 bits with a splitmix64 finalizer —
/// consistent-hash rings and sharded tables want far more than 32 bits of
/// key space when tracking millions of flows.
pub fn extend_hash(h: u32) -> u64 {
    let mut z = (u64::from(h)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Compact sharded flow-state map: 64-bit flow key → 16-bit value (a box
/// or RPU index), open-addressed within power-of-two shards.
///
/// The fleet layer keeps one entry per live flow to measure consistent-hash
/// disturbance, and at millions of flows a `HashMap<FlowKey, _>` is both too
/// fat (≥ 48 B/entry) and unshardable. Each entry here is 16 bytes, shards
/// grow independently, and the shard index is derived from the top hash
/// bits so the low bits stay free for in-shard probing.
///
/// # Examples
///
/// ```
/// use rosebud_net::ShardedFlowTable;
/// let mut t = ShardedFlowTable::new(8);
/// assert_eq!(t.insert(0xfeed_beef, 3), None);
/// assert_eq!(t.insert(0xfeed_beef, 5), Some(3)); // reassignment
/// assert_eq!(t.get(0xfeed_beef), Some(5));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedFlowTable {
    shards: Vec<Shard>,
    shard_shift: u32,
}

#[derive(Debug, Clone)]
struct Shard {
    slots: Vec<Slot>,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    val: u16,
    used: bool,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    val: 0,
    used: false,
};

/// Initial in-shard capacity (slots); shards double at 3/4 load.
const SHARD_INITIAL_SLOTS: usize = 64;

impl ShardedFlowTable {
    /// A table with `shards` shards, rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let n = shards.next_power_of_two();
        Self {
            shards: vec![
                Shard {
                    slots: vec![EMPTY_SLOT; SHARD_INITIAL_SLOTS],
                    len: 0,
                };
                n
            ],
            shard_shift: 64 - n.trailing_zeros(),
        }
    }

    /// The shard a key lands in (top hash bits).
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (key >> self.shard_shift) as usize
        }
    }

    /// Inserts or updates `key`, returning the previous value if the flow
    /// was already tracked.
    pub fn insert(&mut self, key: u64, val: u16) -> Option<u16> {
        let s = self.shard_of(key);
        let shard = &mut self.shards[s];
        if (shard.len + 1) * 4 > shard.slots.len() * 3 {
            shard.grow();
        }
        shard.insert(key, val)
    }

    /// The tracked value of `key`, if any.
    pub fn get(&self, key: u64) -> Option<u16> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Total tracked flows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// `true` when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.len == 0)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

impl Shard {
    fn probe(&self, key: u64) -> usize {
        // Low bits index the shard; the table's shard selector used only
        // the top bits, so these stay well distributed.
        let mask = self.slots.len() - 1;
        let mut i = (key as usize) & mask;
        loop {
            let slot = &self.slots[i];
            if !slot.used || slot.key == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, val: u16) -> Option<u16> {
        let i = self.probe(key);
        let slot = &mut self.slots[i];
        if slot.used {
            let prev = slot.val;
            slot.val = val;
            Some(prev)
        } else {
            *slot = Slot {
                key,
                val,
                used: true,
            };
            self.len += 1;
            None
        }
    }

    fn get(&self, key: u64) -> Option<u16> {
        let slot = &self.slots[self.probe(key)];
        slot.used.then_some(slot.val)
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.slots);
        self.slots = vec![EMPTY_SLOT; old.len() * 2];
        self.len = 0;
        for slot in old {
            if slot.used {
                self.insert(slot.key, slot.val);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn same_flow_same_hash() {
        let a = PacketBuilder::new()
            .src_ip([1, 2, 3, 4])
            .tcp(1111, 443)
            .payload(b"a")
            .build();
        let b = PacketBuilder::new()
            .src_ip([1, 2, 3, 4])
            .tcp(1111, 443)
            .payload(b"bbbb")
            .build();
        assert_eq!(flow_hash(&a), flow_hash(&b));
        assert!(flow_hash(&a).is_some());
    }

    #[test]
    fn different_ports_different_hash() {
        let a = PacketBuilder::new().tcp(1111, 443).build();
        let b = PacketBuilder::new().tcp(1112, 443).build();
        assert_ne!(flow_hash(&a), flow_hash(&b));
    }

    #[test]
    fn non_ip_has_no_flow() {
        let pkt = Packet::new(0, vec![0u8; 64], 0, 0);
        assert_eq!(flow_hash(&pkt), None);
    }

    #[test]
    fn sharded_table_tracks_many_flows_across_shards() {
        let mut t = ShardedFlowTable::new(16);
        for i in 0..50_000u32 {
            // Keys through the same extension the fleet uses.
            assert_eq!(t.insert(extend_hash(i), (i % 7) as u16), None);
        }
        assert_eq!(t.len(), 50_000);
        for i in 0..50_000u32 {
            assert_eq!(t.get(extend_hash(i)), Some((i % 7) as u16));
        }
        // Shards must all carry a share: the selector uses top hash bits.
        assert_eq!(t.num_shards(), 16);
        let min_expected = 50_000 / 16 / 2;
        for s in 0..16 {
            let in_shard = (0..50_000u32)
                .filter(|&i| t.shard_of(extend_hash(i)) == s)
                .count();
            assert!(in_shard > min_expected, "shard {s} only has {in_shard}");
        }
    }

    #[test]
    fn sharded_table_updates_return_previous_owner() {
        let mut t = ShardedFlowTable::new(1);
        assert_eq!(t.insert(42, 1), None);
        assert_eq!(t.insert(42, 2), Some(1));
        assert_eq!(t.insert(42, 2), Some(2));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn low_bits_spread_across_rpus() {
        // The hash LB uses 3 low bits to pick among 8 RPUs; flows must not
        // all collide into a few buckets.
        let mut buckets = [0u32; 8];
        for port in 0..4096u16 {
            let pkt = PacketBuilder::new().tcp(port, 443).build();
            buckets[(flow_hash(&pkt).unwrap() & 7) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (300..=800).contains(&count),
                "bucket {i} has {count} flows; distribution too skewed"
            );
        }
    }
}
