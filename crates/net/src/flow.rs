//! 5-tuple flow identification and hashing.

use crate::packet::Packet;
use crate::{IpProtocol, ETH_HEADER_LEN, IPV4_HEADER_LEN};

/// A 5-tuple flow key.
///
/// The hash-based load balancer in the Pigasus case study computes a 32-bit
/// hash of this tuple inline and prepends it to each packet so the firmware
/// can reuse it without recomputation (§7.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IPv4 address (host order).
    pub src_ip: u32,
    /// Destination IPv4 address (host order).
    pub dst_ip: u32,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Extracts the flow key from a TCP or UDP over IPv4 packet. Returns
    /// `None` for anything else.
    pub fn of(pkt: &Packet) -> Option<Self> {
        let ip = pkt.ipv4().ok()?;
        let l4 = pkt.bytes().get(ETH_HEADER_LEN + IPV4_HEADER_LEN..)?;
        if l4.len() < 4 {
            return None;
        }
        if ip.protocol != IpProtocol::TCP && ip.protocol != IpProtocol::UDP {
            return None;
        }
        Some(Self {
            src_ip: ip.src_u32(),
            dst_ip: ip.dst_u32(),
            src_port: u16::from_be_bytes([l4[0], l4[1]]),
            dst_port: u16::from_be_bytes([l4[2], l4[3]]),
            protocol: ip.protocol.0,
        })
    }

    /// The 32-bit flow hash of this key.
    pub fn hash(&self) -> u32 {
        let mut h = FNV_OFFSET;
        for b in self
            .src_ip
            .to_be_bytes()
            .into_iter()
            .chain(self.dst_ip.to_be_bytes())
            .chain(self.src_port.to_be_bytes())
            .chain(self.dst_port.to_be_bytes())
            .chain([self.protocol])
        {
            h ^= u32::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // A final avalanche so low bits are well mixed: the LB keys RPUs off
        // only 3–4 bits of the hash (§7.1.2).
        h ^= h >> 16;
        h = h.wrapping_mul(0x7feb_352d);
        h ^= h >> 15;
        h
    }
}

const FNV_OFFSET: u32 = 0x811c_9dc5;
const FNV_PRIME: u32 = 0x0100_0193;

/// Convenience: the flow hash of a packet, or `None` for non-TCP/UDP frames.
///
/// # Examples
///
/// ```
/// use rosebud_net::{flow_hash, PacketBuilder};
/// let a = PacketBuilder::new().tcp(1000, 80).build();
/// let b = PacketBuilder::new().tcp(1000, 80).payload(b"different body").build();
/// assert_eq!(flow_hash(&a), flow_hash(&b)); // same flow, same hash
/// ```
pub fn flow_hash(pkt: &Packet) -> Option<u32> {
    FlowKey::of(pkt).map(|k| k.hash())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn same_flow_same_hash() {
        let a = PacketBuilder::new()
            .src_ip([1, 2, 3, 4])
            .tcp(1111, 443)
            .payload(b"a")
            .build();
        let b = PacketBuilder::new()
            .src_ip([1, 2, 3, 4])
            .tcp(1111, 443)
            .payload(b"bbbb")
            .build();
        assert_eq!(flow_hash(&a), flow_hash(&b));
        assert!(flow_hash(&a).is_some());
    }

    #[test]
    fn different_ports_different_hash() {
        let a = PacketBuilder::new().tcp(1111, 443).build();
        let b = PacketBuilder::new().tcp(1112, 443).build();
        assert_ne!(flow_hash(&a), flow_hash(&b));
    }

    #[test]
    fn non_ip_has_no_flow() {
        let pkt = Packet::new(0, vec![0u8; 64], 0, 0);
        assert_eq!(flow_hash(&pkt), None);
    }

    #[test]
    fn low_bits_spread_across_rpus() {
        // The hash LB uses 3 low bits to pick among 8 RPUs; flows must not
        // all collide into a few buckets.
        let mut buckets = [0u32; 8];
        for port in 0..4096u16 {
            let pkt = PacketBuilder::new().tcp(port, 443).build();
            buckets[(flow_hash(&pkt).unwrap() & 7) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (300..=800).contains(&count),
                "bucket {i} has {count} flows; distribution too skewed"
            );
        }
    }
}
