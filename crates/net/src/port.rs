//! Port implementations over the `net` traffic sources and sinks.
//!
//! The simulation core consumes traffic through the
//! [`IngressPort`]/[`EgressPort`] contract (see `rosebud_kernel::port`);
//! this module adapts everything this crate knows how to produce or absorb
//! onto that contract: paced [`TrafficGen`] sources ([`GenPort`]), pcap
//! replay ([`PcapReplayPort`]), and streaming pcap capture
//! ([`PcapWriterPort`]). The adapters are deliberately thin — a future
//! feeder is "a ~100-line port impl", not a change to the core.

use std::io::Write;

use rosebud_kernel::{Cycle, EgressPort, IngressPort, PortClock, StampedIngress};

use crate::gen::TrafficGen;
use crate::packet::Packet;
use crate::pcap::PcapWriter;
use crate::trace::Trace;
use crate::WIRE_OVERHEAD_BYTES;

/// A paced [`TrafficGen`] behind the ingress-port contract — the tester
/// FPGA's per-port generator RPUs as a port.
///
/// Pacing reproduces the historical harness byte-for-byte: each physical
/// port holds an independent byte budget refilled once per cycle at
/// `target_gbps / ports`, a frame is generated only when the budget covers
/// its wire occupancy, and a refused frame ([`IngressPort::give_back`])
/// parks in that port's retry slot while generation moves on to the next
/// physical port — one congested port must not starve the others.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::IngressPort;
/// use rosebud_net::{FixedSizeGen, GenPort};
///
/// // 2 physical ports paced to 1 Tbps aggregate at 4 ns/cycle: the first
/// // cycle's per-lane grant (250 B) covers an 88-wire-byte frame.
/// let mut port = GenPort::per_port(Box::new(FixedSizeGen::new(64, 2)), 1000.0, 4.0, 2);
/// let pkt = port.poll(0).expect("budget covers a 64-byte frame");
/// assert_eq!(pkt.port, 0); // port override: lane 0 generates first
/// ```
pub struct GenPort {
    gen: Box<dyn TrafficGen>,
    target_gbps: f64,
    ns_per_cycle: f64,
    /// One pacing lane per physical port (or a single aggregate lane).
    budget_bytes: Vec<f64>,
    pending: Vec<Option<Packet>>,
    /// Whether generated frames get `pkt.port` overridden with the lane
    /// index (per-port pacing) or keep the generator's own rotation
    /// (aggregate pacing, the fleet harness shape).
    tag_ports: bool,
    cursor: usize,
    next_id: u64,
    last_refill: Option<Cycle>,
}

impl GenPort {
    /// Per-physical-port pacing: `ports` independent lanes each offered
    /// `target_gbps / ports`, generated frames stamped with their lane
    /// index. This is the single-box tester model.
    pub fn per_port(
        gen: Box<dyn TrafficGen>,
        target_gbps: f64,
        ns_per_cycle: f64,
        ports: usize,
    ) -> Self {
        assert!(ports > 0, "need at least one port lane");
        Self {
            gen,
            target_gbps,
            ns_per_cycle,
            budget_bytes: vec![0.0; ports],
            pending: vec![None; ports],
            tag_ports: true,
            cursor: 0,
            next_id: 0,
            last_refill: None,
        }
    }

    /// One shared budget at the full `target_gbps`, frames keeping the
    /// generator's own port rotation — the rack-level tester model.
    pub fn aggregate(gen: Box<dyn TrafficGen>, target_gbps: f64, ns_per_cycle: f64) -> Self {
        Self {
            gen,
            target_gbps,
            ns_per_cycle,
            budget_bytes: vec![0.0],
            pending: vec![None],
            tag_ports: false,
            cursor: 0,
            next_id: 0,
            last_refill: None,
        }
    }

    /// The wrapped generator.
    pub fn generator(&self) -> &dyn TrafficGen {
        &*self.gen
    }

    /// Frames generated so far (== the next packet id).
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Grants each lane its per-cycle byte budget for every cycle elapsed
    /// since the last poll, then rewinds the lane cursor. One grant per
    /// cycle keeps this byte-identical with the historical harness, which
    /// ticked every cycle; a driver that skips cycles still accrues the
    /// right budget (capped, so the loop is bounded).
    fn refill(&mut self, now: Cycle) {
        let grants = match self.last_refill {
            None => 1,
            Some(last) if now > last => (now - last).min(32_768),
            Some(_) => return,
        };
        let lanes = self.budget_bytes.len();
        let bytes_per_cycle = if self.tag_ports {
            self.target_gbps / 8.0 * self.ns_per_cycle / lanes as f64
        } else {
            self.target_gbps / 8.0 * self.ns_per_cycle
        };
        let cap = bytes_per_cycle.max(1.0) * 64.0 + 18_000.0;
        for _ in 0..grants {
            for b in &mut self.budget_bytes {
                *b = (*b + bytes_per_cycle).min(cap);
            }
        }
        self.cursor = 0;
        self.last_refill = Some(now);
    }
}

impl IngressPort<Packet> for GenPort {
    fn poll(&mut self, now: Cycle) -> Option<Packet> {
        self.refill(now);
        let lanes = self.budget_bytes.len();
        while self.cursor < lanes {
            let lane = self.cursor;
            if self.pending[lane].is_none() {
                let wire = (self.gen.next_size() as u64 + WIRE_OVERHEAD_BYTES) as f64;
                if self.budget_bytes[lane] < wire {
                    self.cursor += 1;
                    continue;
                }
                let mut pkt = self.gen.generate(self.next_id, now);
                if self.tag_ports {
                    pkt.port = lane as u8;
                }
                self.next_id += 1;
                self.budget_bytes[lane] -= pkt.wire_len() as f64;
                self.pending[lane] = Some(pkt);
            }
            return self.pending[lane].take();
        }
        None
    }

    fn give_back(&mut self, pkt: Packet) {
        // Park the refused frame in the current lane's retry slot and move
        // on: the historical harness broke this port's loop on refusal and
        // continued with the next physical port.
        let lane = self.cursor.min(self.pending.len() - 1);
        debug_assert!(self.pending[lane].is_none(), "one retry slot per lane");
        self.pending[lane] = Some(pkt);
        self.cursor += 1;
    }

    fn clock(&self, _now: Cycle) -> PortClock {
        // A paced source always has more to offer next cycle (budget
        // permitting); drivers poll every cycle.
        PortClock::Idle
    }

    fn backlog(&self) -> usize {
        self.pending.iter().filter(|p| p.is_some()).count()
    }

    fn name(&self) -> &'static str {
        "gen"
    }
}

/// Replays a [`Trace`] (typically parsed from a pcap) through the ingress
/// contract: each packet is delivered at its recorded generation cycle, in
/// order — `tcpreplay` as a port.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::{IngressPort, PortClock};
/// use rosebud_net::{FixedSizeGen, PcapReplayPort, Trace, TrafficGen};
///
/// let mut trace = Trace::new();
/// let mut gen = FixedSizeGen::new(64, 2);
/// for i in 0..3u64 {
///     trace.push(gen.generate(i, i * 50));
/// }
/// let mut port = PcapReplayPort::new(&trace);
/// assert_eq!(port.clock(0), PortClock::Ready);
/// assert_eq!(port.poll(0).unwrap().id, 0);
/// assert_eq!(port.clock(0), PortClock::NotBefore(50));
/// ```
pub struct PcapReplayPort {
    inner: StampedIngress<Packet>,
}

impl PcapReplayPort {
    /// A replay source over `trace`, delivering each packet at its
    /// `ts_gen` cycle.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is not sorted by `ts_gen` (pcap captures are).
    pub fn new(trace: &Trace) -> Self {
        let mut inner = StampedIngress::new();
        for pkt in trace {
            inner.push_at(pkt.ts_gen, pkt.clone());
        }
        inner.finish();
        Self { inner }
    }

    /// `true` once every packet has been delivered.
    pub fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }
}

impl IngressPort<Packet> for PcapReplayPort {
    fn poll(&mut self, now: Cycle) -> Option<Packet> {
        self.inner.poll(now)
    }

    fn give_back(&mut self, pkt: Packet) {
        self.inner.give_back(pkt);
    }

    fn clock(&self, now: Cycle) -> PortClock {
        self.inner.clock(now)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn name(&self) -> &'static str {
        "pcap-replay"
    }
}

/// An egress port streaming every delivered frame into a pcap — `tcpdump`
/// as a port. Bind one to a device's egress to dump live or replayed
/// traffic for offline inspection.
///
/// Frames are written with their delivery order preserved; the timestamp
/// recorded is the packet's generation cycle (the same convention as the
/// batch exporter). I/O errors are sticky: the first failure is remembered
/// and later offers still succeed simulation-side (capture must never
/// perturb the run), but [`PcapWriterPort::io_error`] reports it.
pub struct PcapWriterPort<W: Write> {
    writer: PcapWriter<W>,
    error: Option<std::io::Error>,
}

impl<W: Write> PcapWriterPort<W> {
    /// A capture port writing to `w` with cycle→time conversion at
    /// `clock_hz`.
    ///
    /// # Errors
    ///
    /// Propagates the header write failure.
    pub fn new(w: W, clock_hz: u64) -> std::io::Result<Self> {
        Ok(Self {
            writer: PcapWriter::new(w, clock_hz)?,
            error: None,
        })
    }

    /// Frames captured so far.
    pub fn packets_written(&self) -> u64 {
        self.writer.packets_written()
    }

    /// The first I/O error the capture hit, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer.into_inner())
    }
}

impl<W: Write> EgressPort<Packet> for PcapWriterPort<W> {
    fn can_accept(&self, _len_bytes: u64) -> bool {
        true
    }

    fn offer(&mut self, pkt: Packet, _len_bytes: u64, _now: Cycle) -> Result<(), Packet> {
        if self.error.is_none() {
            if let Err(e) = self.writer.write_packet(&pkt) {
                self.error = Some(e);
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "pcap-writer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_pcap, FixedSizeGen};

    #[test]
    fn gen_port_rotates_lanes_and_retries_refusals() {
        // 1 Tbps over 2 lanes: 250 B/cycle/lane — one cycle's budget covers
        // an 88-wire-byte frame immediately.
        let mut port = GenPort::per_port(Box::new(FixedSizeGen::new(64, 2)), 1000.0, 4.0, 2);
        let a = port.poll(0).unwrap();
        assert_eq!(a.port, 0);
        // Refuse it: generation moves to lane 1, lane 0 retries next cycle.
        port.give_back(a.clone());
        let b = port.poll(0).unwrap();
        assert_eq!(b.port, 1);
        assert_eq!(port.backlog(), 1);
        let retry = port.poll(1).unwrap();
        assert_eq!(retry.id, a.id, "refused frame re-delivered first");
    }

    #[test]
    fn gen_port_budget_gates_generation() {
        // 0.1 Gbps at 4 ns/cycle over 1 lane: 0.05 B/cycle — a 64-byte
        // frame (88 wire bytes) needs ~1760 cycles of budget.
        let mut port = GenPort::per_port(Box::new(FixedSizeGen::new(64, 1)), 0.1, 4.0, 1);
        assert!(port.poll(0).is_none());
        let mut first = None;
        for now in 1..4000 {
            if let Some(pkt) = port.poll(now) {
                first = Some((pkt, now));
                break;
            }
        }
        let (_, at) = first.expect("budget eventually covers one frame");
        assert!((1500..2000).contains(&at), "first frame at cycle {at}");
    }

    #[test]
    fn aggregate_mode_keeps_generator_port_rotation() {
        // 500 B/cycle aggregate budget: four 88-wire-byte frames fit in the
        // first cycle's grant.
        let mut port = GenPort::aggregate(Box::new(FixedSizeGen::new(64, 4)), 1000.0, 4.0);
        let ports: Vec<u8> = (0..4).map(|_| port.poll(0).unwrap().port).collect();
        assert_eq!(ports, vec![0, 1, 2, 3]);
    }

    #[test]
    fn replay_port_honors_stamps() {
        let mut trace = Trace::new();
        let mut gen = FixedSizeGen::new(64, 2);
        for i in 0..4u64 {
            trace.push(gen.generate(i, i * 100));
        }
        let mut port = PcapReplayPort::new(&trace);
        assert_eq!(port.poll(0).unwrap().id, 0);
        assert!(port.poll(50).is_none());
        assert_eq!(port.clock(50), PortClock::NotBefore(100));
        assert_eq!(port.poll(100).unwrap().id, 1);
        assert_eq!(port.poll(350).unwrap().id, 2);
        assert_eq!(port.poll(350).unwrap().id, 3);
        assert!(port.is_exhausted());
        assert_eq!(port.clock(350), PortClock::Exhausted);
    }

    #[test]
    fn writer_port_captures_delivered_frames() {
        let mut gen = FixedSizeGen::new(128, 2);
        let mut port = PcapWriterPort::new(Vec::new(), 250_000_000).unwrap();
        let mut sent = Vec::new();
        for i in 0..5u64 {
            let pkt = gen.generate(i, i * 10);
            let len = pkt.len();
            port.offer(pkt.clone(), len, i * 10).unwrap();
            sent.push(pkt);
        }
        assert_eq!(port.packets_written(), 5);
        assert!(port.io_error().is_none());
        let bytes = port.finish().unwrap();
        let back = parse_pcap(&bytes, 250_000_000).unwrap();
        for (a, b) in back.iter().zip(sent.iter()) {
            assert_eq!(a.bytes(), b.bytes());
        }
    }
}
