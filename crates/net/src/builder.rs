//! A Scapy-like packet builder.

use crate::headers::{
    EthHeader, EtherType, IpProtocol, Ipv4Header, TcpHeader, UdpHeader, ETH_HEADER_LEN,
    IPV4_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN,
};
use crate::packet::Packet;

/// Builds well-formed Ethernet/IPv4/{TCP,UDP} frames, the way the paper's
/// test benches craft packets with Scapy (Appendix A.4).
///
/// # Examples
///
/// ```
/// use rosebud_net::PacketBuilder;
///
/// // A 64-byte TCP frame padded with zeros.
/// let pkt = PacketBuilder::new()
///     .src_ip([192, 168, 0, 1])
///     .dst_ip([192, 168, 0, 2])
///     .tcp(4000, 80)
///     .pad_to(64)
///     .build();
/// assert_eq!(pkt.len(), 64);
/// assert_eq!(pkt.tcp().unwrap().dst_port, 80);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    eth: EthHeader,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    ttl: u8,
    l4: L4,
    payload: Vec<u8>,
    pad_to: Option<usize>,
    port: u8,
}

#[derive(Debug, Clone)]
enum L4 {
    None,
    Tcp {
        src: u16,
        dst: u16,
        seq: u32,
        flags: u8,
    },
    Udp {
        src: u16,
        dst: u16,
    },
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    /// Starts a builder with neutral defaults (broadcast dst MAC, 10.0.0.x
    /// addresses, no L4 header).
    pub fn new() -> Self {
        Self {
            eth: EthHeader {
                dst: [0x02, 0, 0, 0, 0, 2],
                src: [0x02, 0, 0, 0, 0, 1],
                ethertype: EtherType::IPV4,
            },
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            ttl: 64,
            l4: L4::None,
            payload: Vec::new(),
            pad_to: None,
            port: 0,
        }
    }

    /// Sets the source MAC address.
    pub fn src_mac(mut self, mac: [u8; 6]) -> Self {
        self.eth.src = mac;
        self
    }

    /// Sets the destination MAC address.
    pub fn dst_mac(mut self, mac: [u8; 6]) -> Self {
        self.eth.dst = mac;
        self
    }

    /// Sets a raw EtherType (use to build non-IP frames).
    pub fn ethertype(mut self, ethertype: EtherType) -> Self {
        self.eth.ethertype = ethertype;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, ip: [u8; 4]) -> Self {
        self.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, ip: [u8; 4]) -> Self {
        self.dst_ip = ip;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Makes the packet TCP with the given ports.
    pub fn tcp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.l4 = L4::Tcp {
            src: src_port,
            dst: dst_port,
            seq: 0,
            flags: 0x10, // ACK
        };
        self
    }

    /// Sets the TCP sequence number (no-op unless [`tcp`](Self::tcp) was
    /// called).
    pub fn seq(mut self, seq: u32) -> Self {
        if let L4::Tcp { seq: s, .. } = &mut self.l4 {
            *s = seq;
        }
        self
    }

    /// Sets the TCP flag byte (no-op unless [`tcp`](Self::tcp) was called).
    pub fn tcp_flags(mut self, flags: u8) -> Self {
        if let L4::Tcp { flags: f, .. } = &mut self.l4 {
            *f = flags;
        }
        self
    }

    /// Makes the packet UDP with the given ports.
    pub fn udp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.l4 = L4::Udp {
            src: src_port,
            dst: dst_port,
        };
        self
    }

    /// Sets the L4 payload bytes.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Pads the final frame with zero bytes up to `len` (no-op if the frame
    /// is already at least that long). The padding extends the payload, so
    /// IP/UDP length fields account for it.
    pub fn pad_to(mut self, len: usize) -> Self {
        self.pad_to = Some(len);
        self
    }

    /// Sets the ingress port recorded on the packet.
    pub fn port(mut self, port: u8) -> Self {
        self.port = port;
        self
    }

    /// Assembles the frame.
    pub fn build(self) -> Packet {
        self.build_with(0, 0)
    }

    /// Assembles the frame with an explicit packet id and generation
    /// timestamp (what the traffic generators use).
    pub fn build_with(mut self, id: u64, ts_gen: u64) -> Packet {
        let l4_len = match self.l4 {
            L4::None => 0,
            L4::Tcp { .. } => TCP_HEADER_LEN,
            L4::Udp { .. } => UDP_HEADER_LEN,
        };
        // Grow the payload to honour pad_to before length fields are fixed.
        if let Some(target) = self.pad_to {
            let base = ETH_HEADER_LEN
                + if self.eth.ethertype == EtherType::IPV4 {
                    IPV4_HEADER_LEN + l4_len
                } else {
                    0
                };
            if base + self.payload.len() < target {
                self.payload.resize(target - base, 0);
            }
        }

        let mut data = vec![0u8; ETH_HEADER_LEN];
        self.eth.write(&mut data);

        if self.eth.ethertype == EtherType::IPV4 {
            let protocol = match self.l4 {
                L4::None => IpProtocol(0xfd), // "use for experimentation"
                L4::Tcp { .. } => IpProtocol::TCP,
                L4::Udp { .. } => IpProtocol::UDP,
            };
            let total_len = (IPV4_HEADER_LEN + l4_len + self.payload.len()) as u16;
            let ip = Ipv4Header {
                dscp: 0,
                total_len,
                ident: (id & 0xffff) as u16,
                ttl: self.ttl,
                protocol,
                checksum: 0,
                src: self.src_ip,
                dst: self.dst_ip,
            };
            let at = data.len();
            data.resize(at + IPV4_HEADER_LEN, 0);
            ip.write(&mut data[at..]);

            match self.l4 {
                L4::None => {}
                L4::Tcp {
                    src,
                    dst,
                    seq,
                    flags,
                } => {
                    let tcp = TcpHeader {
                        src_port: src,
                        dst_port: dst,
                        seq,
                        ack: 0,
                        flags,
                        window: 65535,
                    };
                    let at = data.len();
                    data.resize(at + TCP_HEADER_LEN, 0);
                    tcp.write(&mut data[at..]);
                }
                L4::Udp { src, dst } => {
                    let udp = UdpHeader {
                        src_port: src,
                        dst_port: dst,
                        len: (UDP_HEADER_LEN + self.payload.len()) as u16,
                    };
                    let at = data.len();
                    data.resize(at + UDP_HEADER_LEN, 0);
                    udp.write(&mut data[at..]);
                }
            }
        }

        data.extend_from_slice(&self.payload);
        if let Some(target) = self.pad_to {
            if data.len() < target {
                data.resize(target, 0);
            }
        }
        Packet::new(id, data, self.port, ts_gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_tcp_frame_is_54_bytes() {
        let pkt = PacketBuilder::new().tcp(1, 2).build();
        assert_eq!(pkt.len(), 54);
        assert_eq!(pkt.ipv4().unwrap().total_len, 40);
    }

    #[test]
    fn pad_to_grows_payload_and_lengths() {
        let pkt = PacketBuilder::new().udp(5, 6).pad_to(128).build();
        assert_eq!(pkt.len(), 128);
        let ip = pkt.ipv4().unwrap();
        assert_eq!(ip.total_len as usize, 128 - ETH_HEADER_LEN);
        let udp = pkt.udp().unwrap();
        assert_eq!(udp.len as usize, 128 - ETH_HEADER_LEN - IPV4_HEADER_LEN);
    }

    #[test]
    fn pad_to_smaller_than_frame_is_noop() {
        let pkt = PacketBuilder::new()
            .tcp(1, 2)
            .payload(&[7u8; 100])
            .pad_to(64)
            .build();
        assert_eq!(pkt.len(), 154);
    }

    #[test]
    fn payload_survives_round_trip() {
        let body = b"GET / HTTP/1.1\r\n";
        let pkt = PacketBuilder::new().tcp(4000, 80).payload(body).build();
        assert_eq!(pkt.payload().unwrap(), body);
    }

    #[test]
    fn seq_and_flags_apply_to_tcp() {
        let pkt = PacketBuilder::new()
            .tcp(1, 2)
            .seq(99)
            .tcp_flags(0x02)
            .build();
        let tcp = pkt.tcp().unwrap();
        assert_eq!(tcp.seq, 99);
        assert_eq!(tcp.flags, 0x02);
    }
}
