//! Classic libpcap trace import/export.
//!
//! The paper's entire experiment workflow speaks pcap: traces are crafted
//! with Scapy, replayed with `tcpreplay`, and latency samples captured with
//! `tcpdump` (Appendix A.4, D). This module reads and writes the classic
//! little-endian pcap container (no external dependencies) so traces can
//! move between this simulator and those tools.

use std::fmt;
use std::io::{self, Write};

use crate::packet::Packet;
use crate::trace::Trace;

/// Classic pcap magic, little-endian, microsecond timestamps.
const PCAP_MAGIC_LE: u32 = 0xa1b2_c3d4;
/// The same magic as written by a big-endian producer.
const PCAP_MAGIC_BE: u32 = 0xd4c3_b2a1;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Errors from [`parse_pcap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// The file is shorter than its headers claim.
    Truncated,
    /// Unknown magic number (not a classic pcap file).
    BadMagic(u32),
    /// The link type is not Ethernet.
    UnsupportedLinkType(u32),
    /// Big-endian pcap files are valid but not supported here.
    BigEndian,
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Truncated => write!(f, "truncated pcap file"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic 0x{m:08x}"),
            PcapError::UnsupportedLinkType(l) => write!(f, "unsupported link type {l}"),
            PcapError::BigEndian => write!(f, "big-endian pcap files are not supported"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Serializes a trace as a classic pcap file. Packet timestamps come from
/// each packet's generation cycle at `clock_hz` (the synchronized RPU
/// timers of §6.2), so inter-arrival times survive the export.
///
/// # Examples
///
/// ```
/// use rosebud_net::{parse_pcap, to_pcap, FixedSizeGen, Trace};
/// let trace = Trace::from_gen(&mut FixedSizeGen::new(64, 2), 3);
/// let bytes = to_pcap(&trace, 250_000_000);
/// let back = parse_pcap(&bytes, 250_000_000).unwrap();
/// assert_eq!(back.len(), 3);
/// assert_eq!(back.packets()[0].bytes(), trace.packets()[0].bytes());
/// ```
pub fn to_pcap(trace: &Trace, clock_hz: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + trace.total_bytes() as usize + 16 * trace.len());
    let mut w = PcapWriter::new(&mut out, clock_hz).expect("Vec writes are infallible");
    for pkt in trace {
        w.write_packet(pkt).expect("Vec writes are infallible");
    }
    out
}

/// A streaming pcap writer: header on construction, one record per
/// [`write_packet`](PcapWriter::write_packet) call. This is the shape the
/// egress dump ports need — a live or replayed run can emit frames as they
/// are delivered instead of buffering the whole trace in memory.
///
/// # Examples
///
/// ```
/// use rosebud_net::{parse_pcap, FixedSizeGen, PcapWriter, TrafficGen};
///
/// let mut gen = FixedSizeGen::new(64, 2);
/// let mut out = Vec::new();
/// let mut w = PcapWriter::new(&mut out, 250_000_000).unwrap();
/// for i in 0..3 {
///     w.write_packet(&gen.generate(i, i * 100)).unwrap();
/// }
/// assert_eq!(w.packets_written(), 3);
/// drop(w);
/// assert_eq!(parse_pcap(&out, 250_000_000).unwrap().len(), 3);
/// ```
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    clock_hz: u64,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the classic little-endian pcap header and returns the writer.
    /// Record timestamps are derived from packet generation cycles at
    /// `clock_hz`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut w: W, clock_hz: u64) -> io::Result<Self> {
        w.write_all(&PCAP_MAGIC_LE.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&65535u32.to_le_bytes())?; // snaplen
        w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self {
            w,
            clock_hz,
            packets: 0,
        })
    }

    /// Appends one packet record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        let micros = pkt.ts_gen as u128 * 1_000_000 / self.clock_hz as u128;
        let ts_sec = (micros / 1_000_000) as u32;
        let ts_usec = (micros % 1_000_000) as u32;
        let len = pkt.len() as u32;
        self.w.write_all(&ts_sec.to_le_bytes())?;
        self.w.write_all(&ts_usec.to_le_bytes())?;
        self.w.write_all(&len.to_le_bytes())?; // incl_len
        self.w.write_all(&len.to_le_bytes())?; // orig_len
        self.w.write_all(pkt.bytes())?;
        self.packets += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Consumes the writer, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Parses a classic little-endian Ethernet pcap file back into a [`Trace`].
/// Generation timestamps are reconstructed in cycles at `clock_hz`; packet
/// ids are assigned sequentially; ingress ports alternate.
///
/// # Errors
///
/// Returns [`PcapError`] for short files, foreign magics, big-endian files,
/// or non-Ethernet link types.
pub fn parse_pcap(bytes: &[u8], clock_hz: u64) -> Result<Trace, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    match magic {
        PCAP_MAGIC_LE => {}
        PCAP_MAGIC_BE => return Err(PcapError::BigEndian),
        other => return Err(PcapError::BadMagic(other)),
    }
    let linktype = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }
    let mut trace = Trace::new();
    let mut at = 24usize;
    let mut id = 0u64;
    while at < bytes.len() {
        if at + 16 > bytes.len() {
            return Err(PcapError::Truncated);
        }
        let ts_sec = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let ts_usec = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let incl = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
        at += 16;
        if at + incl > bytes.len() {
            return Err(PcapError::Truncated);
        }
        let micros = u64::from(ts_sec) * 1_000_000 + u64::from(ts_usec);
        let ts_gen = (micros as u128 * clock_hz as u128 / 1_000_000) as u64;
        trace.push(Packet::new(
            id,
            bytes[at..at + incl].to_vec(),
            (id % 2) as u8,
            ts_gen,
        ));
        id += 1;
        at += incl;
    }
    Ok(trace)
}

/// Writes a trace to a pcap file on disk.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_pcap_file(
    trace: &Trace,
    clock_hz: u64,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, to_pcap(trace, clock_hz))
}

/// Reads a pcap file from disk.
///
/// # Errors
///
/// Propagates I/O errors; pcap format errors surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_pcap_file(path: impl AsRef<std::path::Path>, clock_hz: u64) -> std::io::Result<Trace> {
    let bytes = std::fs::read(path)?;
    parse_pcap(&bytes, clock_hz)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedSizeGen, FlowTrafficGen, TrafficGen};

    #[test]
    fn round_trip_preserves_bytes_and_timing() {
        let mut gen = FlowTrafficGen::new(8, 300, 0.02, 9);
        let mut trace = Trace::new();
        for i in 0..50u64 {
            trace.push(gen.generate(i, i * 137));
        }
        let clock = 250_000_000;
        let bytes = to_pcap(&trace, clock);
        let back = parse_pcap(&bytes, clock).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in back.iter().zip(trace.iter()) {
            assert_eq!(a.bytes(), b.bytes());
            // Microsecond pcap resolution: 250 cycles per microsecond.
            assert!(
                a.ts_gen.abs_diff(b.ts_gen) < 250,
                "{} vs {}",
                a.ts_gen,
                b.ts_gen
            );
        }
    }

    #[test]
    fn header_fields_are_standard() {
        let trace = Trace::from_gen(&mut FixedSizeGen::new(64, 1), 1);
        let bytes = to_pcap(&trace, 250_000_000);
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(bytes[6..8].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);
        // One 64-byte record.
        assert_eq!(bytes.len(), 24 + 16 + 64);
    }

    #[test]
    fn rejects_foreign_files() {
        assert_eq!(parse_pcap(&[0; 10], 1).unwrap_err(), PcapError::Truncated);
        let mut junk = vec![0u8; 24];
        junk[0..4].copy_from_slice(&0x1234_5678u32.to_le_bytes());
        assert!(matches!(
            parse_pcap(&junk, 1).unwrap_err(),
            PcapError::BadMagic(_)
        ));
        let mut be = vec![0u8; 24];
        be[0..4].copy_from_slice(&0xd4c3_b2a1u32.to_le_bytes());
        assert_eq!(parse_pcap(&be, 1).unwrap_err(), PcapError::BigEndian);
    }

    #[test]
    fn rejects_truncated_record() {
        let trace = Trace::from_gen(&mut FixedSizeGen::new(64, 1), 1);
        let mut bytes = to_pcap(&trace, 250_000_000);
        bytes.truncate(bytes.len() - 10);
        assert_eq!(
            parse_pcap(&bytes, 250_000_000).unwrap_err(),
            PcapError::Truncated
        );
    }

    #[test]
    fn rejects_non_ethernet_link() {
        let trace = Trace::new();
        let mut bytes = to_pcap(&trace, 1);
        bytes[20..24].copy_from_slice(&101u32.to_le_bytes()); // LINKTYPE_RAW
        assert_eq!(
            parse_pcap(&bytes, 1).unwrap_err(),
            PcapError::UnsupportedLinkType(101)
        );
    }

    #[test]
    fn streaming_writer_matches_batch_export_byte_for_byte() {
        let mut gen = FlowTrafficGen::new(4, 200, 0.0, 11);
        let mut trace = Trace::new();
        for i in 0..40u64 {
            trace.push(gen.generate(i, i * 61));
        }
        let clock = 250_000_000;
        let mut streamed = Vec::new();
        let mut w = PcapWriter::new(&mut streamed, clock).unwrap();
        for pkt in &trace {
            w.write_packet(pkt).unwrap();
        }
        assert_eq!(w.packets_written(), 40);
        drop(w);
        assert_eq!(streamed, to_pcap(&trace, clock));
        // Write → read → byte-identical packets.
        let back = parse_pcap(&streamed, clock).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in back.iter().zip(trace.iter()) {
            assert_eq!(a.bytes(), b.bytes());
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rosebud_pcap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcap");
        let trace = Trace::from_gen(&mut FixedSizeGen::new(128, 2), 5);
        write_pcap_file(&trace, 250_000_000, &path).unwrap();
        let back = read_pcap_file(&path, 250_000_000).unwrap();
        assert_eq!(back.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
