//! Deterministic traffic generators.
//!
//! These play the role of the paper's tester FPGA (`basic_pkt_gen`,
//! `pkt_gen`) and the Scapy/tcpreplay trace-injection scripts (Appendix D):
//! a fixed-size flood for the forwarding experiments, flow-structured TCP/UDP
//! traffic with a configurable reordering rate for the IDS experiments, and
//! an attack-mix wrapper that injects rule-matching payloads at a configured
//! fraction of traffic.

use rosebud_kernel::{Cycle, SimRng};

use crate::builder::PacketBuilder;
use crate::packet::{Packet, PacketId};

/// A source of packets. Implementations must be deterministic given their
/// construction-time seed, so experiments reproduce exactly.
pub trait TrafficGen {
    /// Produces the next packet, stamped with `id` and generation cycle `ts`.
    fn generate(&mut self, id: PacketId, ts: Cycle) -> Packet;

    /// The in-memory frame size the generator is currently producing, used
    /// by the pacing logic of the tester model to compute wire occupancy.
    /// Generators with variable sizes return the size of the *next* packet.
    fn next_size(&self) -> usize;
}

/// Generates same-size UDP frames as fast as asked — the paper's
/// `basic_pkt_gen` firmware (§6.1). Source ports rotate through `flows`
/// distinct values so load balancing policies with hashing still spread
/// traffic.
///
/// # Examples
///
/// ```
/// use rosebud_net::{FixedSizeGen, TrafficGen};
/// let mut gen = FixedSizeGen::new(64, 2);
/// let pkt = gen.generate(0, 0);
/// assert_eq!(pkt.len(), 64);
/// assert_eq!(gen.generate(1, 0).port, 1); // alternates ports
/// ```
#[derive(Debug, Clone)]
pub struct FixedSizeGen {
    size: usize,
    ports: u8,
    flows: u16,
    counter: u64,
}

impl FixedSizeGen {
    /// Creates a generator of `size`-byte frames spread round-robin over
    /// `ports` physical ports.
    ///
    /// # Panics
    ///
    /// Panics if `size < 60` (below the 60-byte minimum frame without FCS)
    /// or `ports == 0`.
    pub fn new(size: usize, ports: u8) -> Self {
        assert!(size >= 60, "frame size below Ethernet minimum");
        assert!(ports > 0, "need at least one port");
        Self {
            size,
            ports,
            flows: 1024,
            counter: 0,
        }
    }

    /// Sets how many distinct source ports (flows) to rotate through.
    pub fn with_flows(mut self, flows: u16) -> Self {
        self.flows = flows.max(1);
        self
    }
}

impl TrafficGen for FixedSizeGen {
    fn generate(&mut self, id: PacketId, ts: Cycle) -> Packet {
        let n = self.counter;
        self.counter += 1;
        PacketBuilder::new()
            .src_ip([10, 0, (n >> 8) as u8, n as u8])
            .dst_ip([10, 1, 0, 1])
            .udp(10_000 + (n % u64::from(self.flows)) as u16, 9)
            .pad_to(self.size)
            .port((n % u64::from(self.ports)) as u8)
            .build_with(id, ts)
    }

    fn next_size(&self) -> usize {
        self.size
    }
}

/// Flow-structured TCP traffic with a configurable reordering rate — the
/// "safe traffic" of the IDS experiment (§7.1.3: 0.3 % reordering is "the
/// typical reordering happening for middlebox traffic").
///
/// Reordering is modelled as in real networks: with probability
/// `reorder_rate`, a packet is delayed by one slot so it arrives after its
/// flow successor.
#[derive(Debug)]
pub struct FlowTrafficGen {
    flows: Vec<FlowState>,
    size: usize,
    ports: u8,
    reorder_rate: f64,
    rng: SimRng,
    held: Option<HeldPacket>,
    counter: u64,
}

#[derive(Debug, Clone)]
struct FlowState {
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    seq: u32,
    udp: bool,
}

#[derive(Debug)]
struct HeldPacket {
    flow: usize,
    seq: u32,
}

impl FlowTrafficGen {
    /// Creates a generator over `flow_count` flows producing `size`-byte
    /// frames with the given reordering probability. Roughly 10 % of flows
    /// are UDP, matching the paper's "a small portion of total packets being
    /// UDP" (§7.1.4).
    ///
    /// # Panics
    ///
    /// Panics if `flow_count == 0`, `size < 60`, or `reorder_rate` is not in
    /// `[0, 1]`.
    pub fn new(flow_count: usize, size: usize, reorder_rate: f64, seed: u64) -> Self {
        assert!(flow_count > 0, "need at least one flow");
        assert!(size >= 60, "frame size below Ethernet minimum");
        assert!(
            (0.0..=1.0).contains(&reorder_rate),
            "reorder rate must be a probability"
        );
        let mut rng = SimRng::seed_from(seed);
        let flows = (0..flow_count)
            .map(|_| FlowState {
                src_ip: [
                    10,
                    rng.below(256) as u8,
                    rng.below(256) as u8,
                    1 + rng.below(254) as u8,
                ],
                dst_ip: [172, 16, rng.below(256) as u8, 1 + rng.below(254) as u8],
                src_port: 1024 + rng.below(60_000) as u16,
                dst_port: [80u16, 443, 8080, 22, 25][rng.below(5) as usize],
                seq: rng.next_u32(),
                udp: rng.chance(0.1),
            })
            .collect();
        Self {
            flows,
            size,
            ports: 2,
            reorder_rate,
            rng,
            held: None,
            counter: 0,
        }
    }

    /// Sets how many physical ports to spread packets over (default 2).
    pub fn with_ports(mut self, ports: u8) -> Self {
        assert!(ports > 0, "need at least one port");
        self.ports = ports;
        self
    }

    fn emit(&mut self, flow_idx: usize, seq: u32, id: PacketId, ts: Cycle) -> Packet {
        let port = (self.counter % u64::from(self.ports)) as u8;
        self.counter += 1;
        let flow = &self.flows[flow_idx];
        let builder = PacketBuilder::new()
            .src_ip(flow.src_ip)
            .dst_ip(flow.dst_ip)
            .port(port);
        let builder = if flow.udp {
            builder.udp(flow.src_port, flow.dst_port)
        } else {
            builder.tcp(flow.src_port, flow.dst_port).seq(seq)
        };
        builder.pad_to(self.size).build_with(id, ts)
    }

    /// The payload length carried by each generated frame.
    pub fn payload_len(&self) -> usize {
        self.size.saturating_sub(54)
    }
}

impl TrafficGen for FlowTrafficGen {
    fn generate(&mut self, id: PacketId, ts: Cycle) -> Packet {
        // Release a held (reordered) packet after exactly one successor.
        if let Some(held) = self.held.take() {
            return self.emit(held.flow, held.seq, id, ts);
        }
        let flow_idx = self.rng.below(self.flows.len() as u64) as usize;
        let payload = self.payload_len() as u32;
        let seq = self.flows[flow_idx].seq;
        self.flows[flow_idx].seq = seq.wrapping_add(payload.max(1));
        if self.rng.chance(self.reorder_rate) && !self.flows[flow_idx].udp {
            // Swap this packet with its flow successor: emit the successor
            // now, the current one on the next call.
            let next_seq = self.flows[flow_idx].seq;
            self.flows[flow_idx].seq = next_seq.wrapping_add(payload.max(1));
            self.held = Some(HeldPacket {
                flow: flow_idx,
                seq,
            });
            return self.emit(flow_idx, next_seq, id, ts);
        }
        self.emit(flow_idx, seq, id, ts)
    }

    fn next_size(&self) -> usize {
        self.size
    }
}

/// Wraps a base generator and replaces a configured fraction of packets with
/// attack packets whose payloads contain the supplied patterns — the 1 %
/// attack traffic of the IDS experiment (§7.1.3), or the blacklist-sourced
/// packets of the firewall experiment (§7.2 swaps source IPs instead; see
/// [`AttackMixGen::with_attack_ips`]).
pub struct AttackMixGen<G> {
    base: G,
    attack_fraction: f64,
    attack_payloads: Vec<Vec<u8>>,
    attack_ips: Vec<[u8; 4]>,
    rng: SimRng,
    next: u64,
}

impl<G: TrafficGen> AttackMixGen<G> {
    /// Creates a mixer emitting attack packets at `attack_fraction` of total
    /// traffic, with payloads drawn round-robin from `attack_payloads`.
    ///
    /// # Panics
    ///
    /// Panics if `attack_fraction` is not in `[0, 1]`.
    pub fn new(base: G, attack_fraction: f64, attack_payloads: Vec<Vec<u8>>, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&attack_fraction),
            "attack fraction must be a probability"
        );
        Self {
            base,
            attack_fraction,
            attack_payloads,
            attack_ips: Vec::new(),
            rng: SimRng::seed_from(seed),
            next: 0,
        }
    }

    /// Additionally (or instead) marks attack packets by rewriting their
    /// source IP to one drawn from `ips` — the firewall blacklist case.
    pub fn with_attack_ips(mut self, ips: Vec<[u8; 4]>) -> Self {
        self.attack_ips = ips;
        self
    }

    /// Read access to the wrapped generator.
    pub fn base(&self) -> &G {
        &self.base
    }
}

impl<G: TrafficGen> TrafficGen for AttackMixGen<G> {
    fn generate(&mut self, id: PacketId, ts: Cycle) -> Packet {
        let mut pkt = self.base.generate(id, ts);
        if !self.rng.chance(self.attack_fraction) {
            return pkt;
        }
        self.next += 1;
        if !self.attack_payloads.is_empty() {
            let pattern = &self.attack_payloads[(self.next as usize) % self.attack_payloads.len()];
            if let Some(off) = pkt.payload_offset() {
                let room = pkt.data.len().saturating_sub(off);
                if room >= pattern.len() {
                    // Plant the attack pattern at a deterministic offset.
                    let slack = room - pattern.len();
                    let at = off
                        + if slack == 0 {
                            0
                        } else {
                            (self.next as usize * 7) % slack.max(1)
                        };
                    pkt.data[at..at + pattern.len()].copy_from_slice(pattern);
                } else {
                    // Frame too small for the pattern: grow it.
                    pkt.data.truncate(off);
                    pkt.data.extend_from_slice(pattern);
                }
            }
        }
        if !self.attack_ips.is_empty() {
            let ip = self.attack_ips[(self.next as usize) % self.attack_ips.len()];
            if pkt.ipv4().is_ok() {
                pkt.data[26..30].copy_from_slice(&ip);
                // Re-checksum the mutated IPv4 header.
                let csum = crate::ipv4_checksum(&pkt.data[14..34]);
                pkt.data[24..26].copy_from_slice(&csum.to_be_bytes());
            }
        }
        pkt
    }

    fn next_size(&self) -> usize {
        self.base.next_size()
    }
}

/// The classic Internet-mix distribution: 7 parts 64 B, 4 parts 576 B,
/// 1 part 1500 B (≈ 354 B average) — a realistic stand-in for the "internet
/// traces" whose >800 B average the paper cites for its headline operating
/// point. The exact weights are configurable.
#[derive(Debug)]
pub struct ImixGen {
    entries: Vec<(usize, u32)>,
    total_weight: u32,
    rng: SimRng,
    ports: u8,
    flows: u64,
    next_size: usize,
    counter: u64,
    flow_lengths: Option<FlowLenState>,
}

/// Flow-structure state for [`ImixGen::with_flow_lengths`]: a pool of
/// concurrently active flows, each carrying a packet budget drawn from the
/// configured length distribution. Uses its own PRNG so enabling the knob
/// never perturbs the frame-*size* sequence.
#[derive(Debug)]
struct FlowLenState {
    table: Vec<(u32, u32)>,
    total_weight: u64,
    rng: SimRng,
    /// `(flow id, packets remaining)` per concurrency slot.
    pool: Vec<(u64, u32)>,
    next_flow: u64,
    cursor: usize,
}

impl FlowLenState {
    fn draw_len(&mut self) -> u32 {
        let mut pick = self.rng.below(self.total_weight);
        for &(len, w) in &self.table {
            if pick < u64::from(w) {
                return len;
            }
            pick -= u64::from(w);
        }
        unreachable!("weights sum checked at construction")
    }

    /// The flow id the next packet belongs to, advancing round-robin over
    /// the pool and retiring/replacing exhausted flows.
    fn next_key(&mut self) -> u64 {
        if self.cursor >= self.pool.len() {
            self.cursor = 0;
        }
        if self.pool[self.cursor].1 == 0 {
            let id = self.next_flow;
            self.next_flow += 1;
            let len = self.draw_len();
            self.pool[self.cursor] = (id, len);
        }
        self.pool[self.cursor].1 -= 1;
        let id = self.pool[self.cursor].0;
        self.cursor += 1;
        id
    }
}

impl ImixGen {
    /// The standard simple-IMIX weights.
    pub fn new(ports: u8, seed: u64) -> Self {
        Self::with_weights(&[(64, 7), (576, 4), (1500, 1)], ports, seed)
    }

    /// Custom `(size, weight)` table.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any size is under 60 bytes, any weight
    /// is zero, or `ports` is zero.
    pub fn with_weights(weights: &[(usize, u32)], ports: u8, seed: u64) -> Self {
        assert!(!weights.is_empty(), "need at least one size class");
        assert!(ports > 0, "need at least one port");
        for &(size, w) in weights {
            assert!(size >= 60, "frame size below Ethernet minimum");
            assert!(w > 0, "zero weight");
        }
        let total_weight = weights.iter().map(|&(_, w)| w).sum();
        let mut gen = Self {
            entries: weights.to_vec(),
            total_weight,
            rng: SimRng::seed_from(seed),
            ports,
            flows: 512,
            next_size: weights[0].0,
            counter: 0,
            flow_lengths: None,
        };
        gen.roll();
        gen
    }

    /// Sets a floor on how many distinct 5-tuples to rotate through (the
    /// default rotation covers 64 Ki source IPs × 512 source ports) —
    /// fleet-scale runs spreading millions of flows over a consistent-hash
    /// ring raise this to widen the source-IP rotation.
    ///
    /// # Panics
    ///
    /// Panics if `flows == 0`.
    pub fn with_flows(mut self, flows: u32) -> Self {
        assert!(flows > 0, "need at least one flow");
        self.flows = u64::from(flows);
        self
    }

    /// Structures traffic into flows with realistic *lengths*: `lengths` is
    /// a `(packets_per_flow, weight)` table (e.g. heavy-tailed: mostly mice,
    /// a few elephants), `concurrency` how many flows are in flight at once.
    /// Packets round-robin over the active flows; a flow that exhausts its
    /// drawn budget retires and a fresh 5-tuple takes its slot.
    ///
    /// The knob draws from its own `seed`ed PRNG, so the frame-size sequence
    /// is exactly the un-knobbed generator's — only the 5-tuple rotation
    /// changes. Not calling this keeps the historical counter-based rotation
    /// byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty, any flow length or weight is zero, or
    /// `concurrency` is zero.
    pub fn with_flow_lengths(
        mut self,
        lengths: &[(u32, u32)],
        concurrency: usize,
        seed: u64,
    ) -> Self {
        assert!(!lengths.is_empty(), "need at least one flow-length class");
        assert!(concurrency > 0, "need at least one concurrent flow");
        for &(len, w) in lengths {
            assert!(len > 0, "zero-packet flow class");
            assert!(w > 0, "zero weight");
        }
        let total_weight = lengths.iter().map(|&(_, w)| u64::from(w)).sum();
        self.flow_lengths = Some(FlowLenState {
            table: lengths.to_vec(),
            total_weight,
            rng: SimRng::seed_from(seed),
            pool: vec![(0, 0); concurrency],
            next_flow: 0,
            cursor: 0,
        });
        self
    }

    fn roll(&mut self) {
        let mut pick = self.rng.below(u64::from(self.total_weight)) as u32;
        for &(size, w) in &self.entries {
            if pick < w {
                self.next_size = size;
                return;
            }
            pick -= w;
        }
    }

    /// The average frame size implied by the weight table.
    pub fn mean_size(&self) -> f64 {
        let num: u64 = self
            .entries
            .iter()
            .map(|&(s, w)| s as u64 * u64::from(w))
            .sum();
        num as f64 / f64::from(self.total_weight)
    }
}

impl TrafficGen for ImixGen {
    fn generate(&mut self, id: PacketId, ts: Cycle) -> Packet {
        let size = self.next_size;
        self.roll();
        let n = self.counter;
        self.counter += 1;
        // With the default 512-flow floor this reduces to the historical
        // ([10, 2, n>>8, n], 20_000 + n%512) rotation byte-for-byte, so
        // golden traces are unaffected.
        let k = match &mut self.flow_lengths {
            Some(state) => state.next_key(),
            None => n,
        };
        let f = k % self.flows.max(65_536);
        PacketBuilder::new()
            .src_ip([10, 2 + (f >> 16) as u8, (f >> 8) as u8, f as u8])
            .dst_ip([10, 3, 0, 1])
            .udp(20_000 + (k % self.flows.min(512)) as u16, 9)
            .pad_to(size)
            .port((n % u64::from(self.ports)) as u8)
            .build_with(id, ts)
    }

    fn next_size(&self) -> usize {
        self.next_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_is_fixed() {
        let mut gen = FixedSizeGen::new(1500, 2);
        for i in 0..100 {
            assert_eq!(gen.generate(i, 0).len(), 1500);
        }
    }

    #[test]
    fn flow_gen_is_deterministic_per_seed() {
        let mut a = FlowTrafficGen::new(16, 256, 0.1, 99);
        let mut b = FlowTrafficGen::new(16, 256, 0.1, 99);
        for i in 0..200 {
            assert_eq!(a.generate(i, 0).data, b.generate(i, 0).data);
        }
    }

    #[test]
    fn flow_gen_reorders_at_roughly_configured_rate() {
        // Count inversions: packets of a flow whose TCP seq is lower than
        // the previously seen seq of that flow.
        let rate = 0.05;
        let mut gen = FlowTrafficGen::new(8, 128, rate, 7);
        let mut last_seq: std::collections::HashMap<u16, u32> = Default::default();
        let mut inversions = 0usize;
        let total = 20_000;
        for i in 0..total {
            let pkt = gen.generate(i, 0);
            if let Ok(tcp) = pkt.tcp() {
                let key = tcp.src_port;
                if let Some(&prev) = last_seq.get(&key) {
                    if tcp.seq.wrapping_sub(prev) > u32::MAX / 2 {
                        inversions += 1;
                    }
                }
                last_seq.insert(key, tcp.seq);
            }
        }
        let observed = inversions as f64 / total as f64;
        assert!(
            (observed - rate * 0.9).abs() < 0.03,
            "observed reordering rate {observed}, expected ~{rate}"
        );
    }

    #[test]
    fn zero_reorder_rate_keeps_flows_in_order() {
        let mut gen = FlowTrafficGen::new(4, 128, 0.0, 3);
        let mut last_seq: std::collections::HashMap<u16, u32> = Default::default();
        for i in 0..5_000 {
            let pkt = gen.generate(i, 0);
            if let Ok(tcp) = pkt.tcp() {
                if let Some(&prev) = last_seq.get(&tcp.src_port) {
                    assert!(
                        tcp.seq.wrapping_sub(prev) < u32::MAX / 2,
                        "flow went backwards with reorder_rate = 0"
                    );
                }
                last_seq.insert(tcp.src_port, tcp.seq);
            }
        }
    }

    #[test]
    fn attack_mix_plants_patterns_at_configured_fraction() {
        let pattern = b"EVILEVILEVIL".to_vec();
        let base = FlowTrafficGen::new(8, 512, 0.0, 1);
        let mut gen = AttackMixGen::new(base, 0.01, vec![pattern.clone()], 2);
        let total = 50_000;
        let mut hits = 0;
        for i in 0..total {
            let pkt = gen.generate(i, 0);
            if pkt
                .payload()
                .map(|p| p.windows(pattern.len()).any(|w| w == &pattern[..]))
                .unwrap_or(false)
            {
                hits += 1;
            }
        }
        let frac = hits as f64 / total as f64;
        assert!(
            (frac - 0.01).abs() < 0.004,
            "attack fraction {frac}, expected ~0.01"
        );
    }

    #[test]
    fn imix_mixes_sizes_at_configured_weights() {
        let mut gen = ImixGen::new(2, 4);
        let mut counts = std::collections::HashMap::new();
        for i in 0..12_000 {
            // next_size must predict the generated packet's size.
            let predicted = gen.next_size();
            let pkt = gen.generate(i, 0);
            assert_eq!(pkt.len() as usize, predicted);
            *counts.entry(pkt.len()).or_insert(0u32) += 1;
        }
        let c64 = counts[&64] as f64 / 12_000.0;
        let c576 = counts[&576] as f64 / 12_000.0;
        let c1500 = counts[&1500] as f64 / 12_000.0;
        assert!((c64 - 7.0 / 12.0).abs() < 0.03, "64B fraction {c64}");
        assert!((c576 - 4.0 / 12.0).abs() < 0.03, "576B fraction {c576}");
        assert!((c1500 - 1.0 / 12.0).abs() < 0.03, "1500B fraction {c1500}");
        assert!((ImixGen::new(1, 0).mean_size() - 354.33).abs() < 0.5);
    }

    #[test]
    fn imix_flow_floor_widens_rotation_without_changing_defaults() {
        // The default must keep the historical packet bytes exactly.
        let mut narrow = ImixGen::new(2, 9);
        let mut narrow2 = ImixGen::new(2, 9).with_flows(512);
        for i in 0..2_000 {
            assert_eq!(narrow.generate(i, 0).data, narrow2.generate(i, 0).data);
        }
        // A wide rotation must produce more distinct flow keys than the
        // 64 Ki-IP default over the same span.
        let mut wide = ImixGen::new(2, 9).with_flows(1 << 20);
        let mut keys = std::collections::HashSet::new();
        for i in 0..70_000 {
            if let Some(k) = crate::flow_hash(&wide.generate(i, 0)) {
                keys.insert(k);
            }
        }
        assert!(keys.len() > 66_000, "only {} distinct flows", keys.len());
    }

    #[test]
    fn flow_length_knob_shapes_flows_without_touching_sizes() {
        // The size sequence must be exactly the un-knobbed generator's.
        let mut plain = ImixGen::new(2, 11);
        let mut knobbed = ImixGen::new(2, 11).with_flow_lengths(&[(5, 1)], 4, 77);
        let total = 4_000u64;
        let mut per_flow = std::collections::HashMap::new();
        for i in 0..total {
            let a = plain.generate(i, 0);
            let b = knobbed.generate(i, 0);
            assert_eq!(a.len(), b.len(), "sizes diverged at packet {i}");
            let key = crate::flow_hash(&b).expect("UDP frames hash");
            *per_flow.entry(key).or_insert(0u32) += 1;
        }
        // Every completed flow carries exactly 5 packets; only the <=4
        // in-flight flows may be short.
        let short = per_flow.values().filter(|&&c| c != 5).count();
        assert!(short <= 4, "{short} flows off the 5-packet budget");
        assert!(per_flow.values().all(|&c| c <= 5));
        assert!(per_flow.len() >= (total as usize / 5), "flows not retiring");
    }

    #[test]
    fn attack_ips_rewrite_source_and_fix_checksum() {
        let base = FixedSizeGen::new(128, 1);
        let mut gen =
            AttackMixGen::new(base, 1.0, Vec::new(), 5).with_attack_ips(vec![[6, 6, 6, 6]]);
        let pkt = gen.generate(0, 0);
        let ip = pkt.ipv4().unwrap();
        assert_eq!(ip.src, [6, 6, 6, 6]);
        // The rewritten header must still checksum to 0xffff.
        let buf = &pkt.bytes()[14..34];
        let mut sum: u32 = 0;
        for i in (0..20).step_by(2) {
            sum += u32::from(u16::from_be_bytes([buf[i], buf[i + 1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(sum, 0xffff);
    }
}
