//! Packet substrate for the Rosebud reproduction.
//!
//! The paper's testbed crafts traffic with Scapy and replays pcaps with
//! `tcpreplay` (Appendix A.4, D). This crate is the Rust equivalent:
//! Ethernet/IPv4/TCP/UDP header parsing and construction with checksums, a
//! packet type carried through the simulated datapath, 5-tuple flow hashing
//! (the hash the paper's hash-based load balancer computes inline, §7.1.2),
//! and deterministic traffic generators — fixed-size line-rate floods, flow
//! traffic with a configurable reordering rate, and attack-mix injection.
//!
//! # Examples
//!
//! ```
//! use rosebud_net::{PacketBuilder, EtherType, IpProtocol};
//!
//! let pkt = PacketBuilder::new()
//!     .src_ip([10, 0, 0, 1])
//!     .dst_ip([10, 0, 0, 2])
//!     .tcp(1234, 80)
//!     .payload(b"hello")
//!     .build();
//! let eth = rosebud_net::EthHeader::parse(pkt.bytes()).unwrap();
//! assert_eq!(eth.ethertype, EtherType::IPV4);
//! let ip = rosebud_net::Ipv4Header::parse(&pkt.bytes()[14..]).unwrap();
//! assert_eq!(ip.protocol, IpProtocol::TCP);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod flow;
mod gen;
mod headers;
mod packet;
mod pcap;
mod port;
mod trace;

pub use builder::PacketBuilder;
pub use flow::{extend_hash, flow_hash, FlowKey, ShardedFlowTable};
pub use gen::{AttackMixGen, FixedSizeGen, FlowTrafficGen, ImixGen, TrafficGen};
pub use headers::{
    ipv4_checksum, EthHeader, EtherType, HeaderError, IpProtocol, Ipv4Header, TcpHeader, UdpHeader,
    ETH_HEADER_LEN, IPV4_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN,
};
pub use packet::{Packet, PacketId};
pub use pcap::{parse_pcap, read_pcap_file, to_pcap, write_pcap_file, PcapError, PcapWriter};
pub use port::{GenPort, PcapReplayPort, PcapWriterPort};
pub use trace::Trace;

/// Per-frame overhead on the Ethernet wire beyond the in-memory packet:
/// 8 bytes preamble + start-of-frame, 4 bytes FCS, 12 bytes inter-frame gap.
/// The paper quotes packet sizes *excluding* the 4-byte FCS (§6.1), so a
/// "64-byte packet" occupies 88 byte-times on the wire.
pub const WIRE_OVERHEAD_BYTES: u64 = 24;

/// Bytes a frame of in-memory length `len` occupies on the wire.
pub fn wire_bytes(len: u64) -> u64 {
    len + WIRE_OVERHEAD_BYTES
}

/// The maximum packet rate, in packets per second, of a `gbps` link carrying
/// frames of in-memory size `size` bytes.
///
/// # Examples
///
/// ```
/// // 64-byte frames on 200 Gbps: ~284 Mpps — the paper's 250 Mpps forwarder
/// // is 88 % of this (§6.1).
/// let pps = rosebud_net::line_rate_pps(200.0, 64);
/// assert!((pps / 1e6 - 284.09).abs() < 0.01);
/// ```
pub fn line_rate_pps(gbps: f64, size: u64) -> f64 {
    gbps * 1e9 / (wire_bytes(size) as f64 * 8.0)
}

/// The maximum *effective* (payload) throughput in Gbps of a `gbps` link
/// carrying frames of size `size` — the dotted lines in Fig. 7.
pub fn effective_line_rate_gbps(gbps: f64, size: u64) -> f64 {
    gbps * size as f64 / wire_bytes(size) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_overhead_matches_paper_percentages() {
        // §6.1: 64-byte forwarding tops out at 250 Mpps = 88 % of line rate,
        // 65-byte at 250 Mpps = 89 %.
        let max64 = line_rate_pps(200.0, 64) / 1e6;
        let max65 = line_rate_pps(200.0, 65) / 1e6;
        assert!(
            (250.0 / max64 - 0.88).abs() < 0.005,
            "64B ratio {}",
            250.0 / max64
        );
        assert!(
            (250.0 / max65 - 0.89).abs() < 0.005,
            "65B ratio {}",
            250.0 / max65
        );
    }

    #[test]
    fn effective_rate_approaches_line_rate_for_big_frames() {
        assert!(effective_line_rate_gbps(200.0, 64) < 150.0);
        assert!(effective_line_rate_gbps(200.0, 9000) > 199.0);
    }
}
