//! Ethernet, IPv4, TCP and UDP header parsing and construction.

use std::fmt;

/// Length of an Ethernet II header in bytes.
pub const ETH_HEADER_LEN: usize = 14;
/// Length of a minimal IPv4 header (no options) in bytes.
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of a minimal TCP header (no options) in bytes.
pub const TCP_HEADER_LEN: usize = 20;
/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// An Ethernet II EtherType value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 (0x0800).
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP (0x0806).
    pub const ARP: EtherType = EtherType(0x0806);
    /// IPv6 (0x86DD).
    pub const IPV6: EtherType = EtherType(0x86DD);
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

/// An IP protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpProtocol(pub u8);

impl IpProtocol {
    /// TCP (6).
    pub const TCP: IpProtocol = IpProtocol(6);
    /// UDP (17).
    pub const UDP: IpProtocol = IpProtocol(17);
    /// ICMP (1).
    pub const ICMP: IpProtocol = IpProtocol(1);
}

/// Errors produced when parsing headers from raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The byte slice is shorter than the header requires.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version or length field has an unsupported value.
    Malformed(&'static str),
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated { need, have } => {
                write!(f, "truncated header: need {need} bytes, have {have}")
            }
            HeaderError::Malformed(what) => write!(f, "malformed header: {what}"),
        }
    }
}

impl std::error::Error for HeaderError {}

fn need(buf: &[u8], n: usize) -> Result<(), HeaderError> {
    if buf.len() < n {
        Err(HeaderError::Truncated {
            need: n,
            have: buf.len(),
        })
    } else {
        Ok(())
    }
}

fn be16(buf: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([buf[at], buf[at + 1]])
}

fn be32(buf: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

/// An Ethernet II header.
///
/// # Examples
///
/// ```
/// use rosebud_net::{EthHeader, EtherType};
/// let hdr = EthHeader {
///     dst: [0xff; 6],
///     src: [2, 0, 0, 0, 0, 1],
///     ethertype: EtherType::IPV4,
/// };
/// let mut buf = [0u8; 14];
/// hdr.write(&mut buf);
/// assert_eq!(EthHeader::parse(&buf).unwrap(), hdr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EthHeader {
    /// Destination MAC address.
    pub dst: [u8; 6],
    /// Source MAC address.
    pub src: [u8; 6],
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EthHeader {
    /// Parses an Ethernet header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError::Truncated`] if `buf` is shorter than 14 bytes.
    pub fn parse(buf: &[u8]) -> Result<Self, HeaderError> {
        need(buf, ETH_HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(Self {
            dst,
            src,
            ethertype: EtherType(be16(buf, 12)),
        })
    }

    /// Writes the header into the front of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than 14 bytes.
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..6].copy_from_slice(&self.dst);
        buf[6..12].copy_from_slice(&self.src);
        buf[12..14].copy_from_slice(&self.ethertype.0.to_be_bytes());
    }
}

/// An IPv4 header (options unsupported; middlebox traffic virtually never
/// carries them and the paper's firmware assumes 20-byte headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte.
    pub dscp: u8,
    /// Total length: header plus payload, in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Header checksum as read from the wire (0 when constructed; call
    /// [`Ipv4Header::write`] to emit a correct one).
    pub checksum: u16,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
}

impl Ipv4Header {
    /// Parses an IPv4 header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError::Truncated`] if fewer than 20 bytes are
    /// available, or [`HeaderError::Malformed`] for a non-4 version or an IHL
    /// other than 5.
    pub fn parse(buf: &[u8]) -> Result<Self, HeaderError> {
        need(buf, IPV4_HEADER_LEN)?;
        let version = buf[0] >> 4;
        let ihl = buf[0] & 0x0f;
        if version != 4 {
            return Err(HeaderError::Malformed("IP version is not 4"));
        }
        if ihl != 5 {
            return Err(HeaderError::Malformed("IPv4 options are not supported"));
        }
        Ok(Self {
            dscp: buf[1],
            total_len: be16(buf, 2),
            ident: be16(buf, 4),
            ttl: buf[8],
            protocol: IpProtocol(buf[9]),
            checksum: be16(buf, 10),
            src: [buf[12], buf[13], buf[14], buf[15]],
            dst: [buf[16], buf[17], buf[18], buf[19]],
        })
    }

    /// Writes the header, computing a fresh checksum.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than 20 bytes.
    pub fn write(&self, buf: &mut [u8]) {
        buf[0] = 0x45;
        buf[1] = self.dscp;
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6] = 0x40; // don't fragment
        buf[7] = 0;
        buf[8] = self.ttl;
        buf[9] = self.protocol.0;
        buf[10] = 0;
        buf[11] = 0;
        buf[12..16].copy_from_slice(&self.src);
        buf[16..20].copy_from_slice(&self.dst);
        let csum = ipv4_checksum(&buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Source address as a `u32` in host order (e.g. 10.0.0.1 = 0x0A000001),
    /// the form the firewall accelerator consumes (§7.2).
    pub fn src_u32(&self) -> u32 {
        u32::from_be_bytes(self.src)
    }

    /// Destination address as a `u32` in host order.
    pub fn dst_u32(&self) -> u32 {
        u32::from_be_bytes(self.dst)
    }
}

/// A TCP header (options unsupported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (FIN=0x01, SYN=0x02, RST=0x04, PSH=0x08, ACK=0x10).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Parses a TCP header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError::Truncated`] if fewer than 20 bytes are
    /// available.
    pub fn parse(buf: &[u8]) -> Result<Self, HeaderError> {
        need(buf, TCP_HEADER_LEN)?;
        Ok(Self {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            seq: be32(buf, 4),
            ack: be32(buf, 8),
            flags: buf[13],
            window: be16(buf, 14),
        })
    }

    /// Writes the header (checksum left zero: the simulated NICs offload it).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than 20 bytes.
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = 5 << 4; // data offset = 5 words
        buf[13] = self.flags;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..20].fill(0); // checksum + urgent pointer
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length: header plus payload, in bytes.
    pub len: u16,
}

impl UdpHeader {
    /// Parses a UDP header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderError::Truncated`] if fewer than 8 bytes are
    /// available.
    pub fn parse(buf: &[u8]) -> Result<Self, HeaderError> {
        need(buf, UDP_HEADER_LEN)?;
        Ok(Self {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            len: be16(buf, 4),
        })
    }

    /// Writes the header (checksum left zero, which is legal for UDP/IPv4).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than 8 bytes.
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.len.to_be_bytes());
        buf[6..8].fill(0);
    }
}

/// Computes the IPv4 header checksum over `header` (the checksum field bytes
/// are treated as zero).
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut i = 0;
    while i + 1 < header.len() {
        // Skip the checksum field at offset 10.
        let word = if i == 10 {
            0
        } else {
            u32::from(be16(header, i))
        };
        sum += word;
        i += 2;
    }
    if i < header.len() {
        sum += u32::from(header[i]) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_round_trip_with_valid_checksum() {
        let hdr = Ipv4Header {
            dscp: 0,
            total_len: 40,
            ident: 0x1234,
            ttl: 64,
            protocol: IpProtocol::TCP,
            checksum: 0,
            src: [192, 168, 1, 1],
            dst: [10, 0, 0, 1],
        };
        let mut buf = [0u8; IPV4_HEADER_LEN];
        hdr.write(&mut buf);
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.dst, hdr.dst);
        assert_eq!(parsed.total_len, 40);
        // Verifying the checksum: summing all 16-bit words including the
        // stored checksum must give 0xffff.
        let mut sum: u32 = 0;
        for i in (0..IPV4_HEADER_LEN).step_by(2) {
            sum += u32::from(be16(&buf, i));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(sum, 0xffff);
    }

    #[test]
    fn tcp_round_trip() {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 51000,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: 0x18,
            window: 65535,
        };
        let mut buf = [0u8; TCP_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(TcpHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn udp_round_trip() {
        let hdr = UdpHeader {
            src_port: 53,
            dst_port: 5353,
            len: 100,
        };
        let mut buf = [0u8; UDP_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(UdpHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        assert!(matches!(
            EthHeader::parse(&[0u8; 13]),
            Err(HeaderError::Truncated { need: 14, have: 13 })
        ));
        assert!(Ipv4Header::parse(&[0x45; 19]).is_err());
        assert!(TcpHeader::parse(&[0; 19]).is_err());
        assert!(UdpHeader::parse(&[0; 7]).is_err());
    }

    #[test]
    fn bad_ip_version_rejected() {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Header::parse(&buf),
            Err(HeaderError::Malformed("IP version is not 4"))
        );
    }

    #[test]
    fn ip_options_rejected() {
        let mut buf = [0u8; 24];
        buf[0] = 0x46; // IHL 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(HeaderError::Malformed(_))
        ));
    }
}
