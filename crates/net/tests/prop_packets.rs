//! Property tests on the packet substrate: build→parse round-trips,
//! checksum validity, and flow-hash stability.

use proptest::prelude::*;
use rosebud_net::{flow_hash, ipv4_checksum, FlowKey, Ipv4Header, PacketBuilder};

proptest! {
    #[test]
    fn tcp_build_parse_round_trip(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let pkt = PacketBuilder::new()
            .src_ip(src)
            .dst_ip(dst)
            .tcp(sport, dport)
            .seq(seq)
            .payload(&payload)
            .build();
        let ip = pkt.ipv4().unwrap();
        prop_assert_eq!(ip.src, src);
        prop_assert_eq!(ip.dst, dst);
        prop_assert_eq!(ip.total_len as usize, 20 + 20 + payload.len());
        let tcp = pkt.tcp().unwrap();
        prop_assert_eq!(tcp.src_port, sport);
        prop_assert_eq!(tcp.dst_port, dport);
        prop_assert_eq!(tcp.seq, seq);
        prop_assert_eq!(pkt.payload().unwrap(), &payload[..]);
    }

    #[test]
    fn udp_build_parse_round_trip(
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt = PacketBuilder::new().udp(sport, dport).payload(&payload).build();
        let udp = pkt.udp().unwrap();
        prop_assert_eq!(udp.src_port, sport);
        prop_assert_eq!(udp.dst_port, dport);
        prop_assert_eq!(udp.len as usize, 8 + payload.len());
    }

    #[test]
    fn ipv4_checksum_validates(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        len in 20u16..1500,
        ttl in 1u8..=255,
        ident in any::<u16>(),
    ) {
        let hdr = Ipv4Header {
            dscp: 0,
            total_len: len,
            ident,
            ttl,
            protocol: rosebud_net::IpProtocol::TCP,
            checksum: 0,
            src,
            dst,
        };
        let mut buf = [0u8; 20];
        hdr.write(&mut buf);
        // The stored checksum must make the header sum to 0xffff; the
        // checksum function over the written header must agree with the
        // stored field.
        let stored = u16::from_be_bytes([buf[10], buf[11]]);
        prop_assert_eq!(ipv4_checksum(&buf), stored);
    }

    #[test]
    fn pad_to_never_shrinks(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        target in 60usize..2000,
    ) {
        let pkt = PacketBuilder::new().tcp(1, 2).payload(&payload).pad_to(target).build();
        prop_assert!(pkt.len() as usize >= target.max(54 + payload.len()));
    }

    #[test]
    fn flow_hash_depends_only_on_five_tuple(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        pa in proptest::collection::vec(any::<u8>(), 0..64),
        pb in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mk = |payload: &[u8]| {
            PacketBuilder::new()
                .src_ip(src)
                .dst_ip(dst)
                .tcp(sport, dport)
                .payload(payload)
                .build()
        };
        prop_assert_eq!(flow_hash(&mk(&pa)), flow_hash(&mk(&pb)));
    }

    #[test]
    fn flow_key_extraction_matches_headers(
        src in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let pkt = PacketBuilder::new().src_ip(src).tcp(sport, dport).build();
        let key = FlowKey::of(&pkt).unwrap();
        prop_assert_eq!(key.src_ip, u32::from_be_bytes(src));
        prop_assert_eq!(key.src_port, sport);
        prop_assert_eq!(key.dst_port, dport);
        prop_assert_eq!(key.protocol, 6);
    }
}
