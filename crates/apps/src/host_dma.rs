//! A forwarder that mirrors packet headers into host DRAM over the DMA
//! manager (§4.2) — the "expose state to the host" path, written the way the
//! protocol/taint analyzer expects every DMA firmware to be written.
//!
//! Per packet, the firmware programs a host-DMA of the frame's first 64
//! bytes into a ring in host DRAM, kicks the engine, and polls `DMA_STATUS`
//! to completion (petting the watchdog while PCIe round-trips) before
//! releasing the descriptor and forwarding the frame. The DMA local address
//! comes from `RECV_DESC_DATA` — packet-influenced data — so it is
//! mask-sanitized back into the packet-memory window before it may reach
//! `DMA_LOCAL_ADDR`; dropping the `and`/`or` pair makes the taint checker
//! deny the image.

use rosebud_core::{LoadPolicy, Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud_riscv::{assemble, Image};

/// Bytes mirrored to host DRAM per packet (one ring entry).
pub const RING_ENTRY_BYTES: u32 = 64;

/// Size of the host-DRAM header ring in bytes (must be a power of two).
pub const RING_BYTES: u32 = 0x1_0000;

/// Source of the host-mirroring forwarder. `interval` is the watchdog
/// deadline in cycles; it must cover one full poll + DMA round-trip, so use
/// at least a few times the configured PCIe RTT.
pub fn host_dma_forwarder_asm(interval: u32) -> String {
    format!(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t1, 0x00800000        # descriptor context array in dmem
            li t2, 0x01000000        # pmem base == port XOR mask (bit 24)
            li t5, {interval}        # watchdog deadline, re-armed per poll
            li s0, 0                 # host DRAM ring cursor
            li s1, 0x000fffff        # pmem offset mask (sanitizes DMA source)
            li s2, {wrap}            # host ring wrap mask
        poll:
            sw t5, 0x40(t0)          # TIMER_CMP: pet the one-shot watchdog
            lw a0, 0x00(t0)          # RECV_READY
            beqz a0, poll
            lw a1, 0x04(t0)          # RECV_DESC_LO
            lw a2, 0x08(t0)          # RECV_DESC_DATA (frame address in pmem)
            sw a1, 0(t1)             # copy descriptor into context
            sw a2, 4(t1)
            and a3, a2, s1           # sanitize: clamp to a pmem offset...
            or a3, a3, t2            # ...rebased into the packet window
            sw s0, 0x44(t0)          # DMA_HOST_ADDR: ring cursor
            sw a3, 0x48(t0)          # DMA_LOCAL_ADDR: sanitized frame addr
            li a4, {entry}
            sw a4, 0x4c(t0)          # DMA_LEN: one ring entry
            li a4, 1
            sw a4, 0x50(t0)          # DMA_CTRL: pmem -> host DRAM
        wait:
            sw t5, 0x40(t0)          # keep petting while PCIe round-trips
            lw a4, 0x54(t0)          # DMA_STATUS: completion poll
            bnez a4, wait
            addi s0, s0, {entry}
            and s0, s0, s2           # wrap the host ring
            sw zero, 0x0c(t0)        # RECV_RELEASE
            xor a1, a1, t2           # swap egress port 0 <-> 1
            sw a1, 0x10(t0)          # SEND_DESC_LO (stage)
            sw a2, 0x14(t0)          # SEND_DESC_DATA (commit)
            j poll
        ",
        wrap = RING_BYTES - 1,
        entry = RING_ENTRY_BYTES,
    )
}

/// Assembles the host-mirroring forwarder with a default watchdog interval
/// generous enough for the default PCIe RTT.
///
/// # Panics
///
/// Panics only if the embedded source fails to assemble (a build bug).
pub fn host_dma_forwarder_image() -> Image {
    assemble(&host_dma_forwarder_asm(65536)).expect("embedded host-dma forwarder must assemble")
}

/// Builds a forwarding system that mirrors every packet's header into the
/// host DRAM ring, vetted under [`LoadPolicy::Deny`] — the analyzer proves
/// the descriptor/DMA protocol and the taint sanitization before boot.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_host_dma_system(rpus: usize) -> Result<Rosebud, String> {
    let image = host_dma_forwarder_image();
    Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .load_policy(LoadPolicy::Deny)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_core::Harness;
    use rosebud_net::FixedSizeGen;

    #[test]
    fn host_dma_forwarder_mirrors_headers_and_forwards() {
        let sys = build_host_dma_system(4).expect("Deny gate must pass this firmware");
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(128, 2)), 2.0).keep_output(true);
        h.run(60_000);
        assert!(
            h.received() > 4,
            "host-dma forwarder delivered {} packets",
            h.received()
        );
        for pkt in h.collected() {
            assert!(pkt.port < 2);
        }
        // The header ring in host DRAM must hold mirrored frame bytes:
        // FixedSizeGen frames start with a standard Ethernet+IP header, so
        // the ring cannot still be all-zero.
        let ring = &h.sys.host_dram()[..RING_BYTES as usize];
        assert!(
            ring.iter().any(|&b| b != 0),
            "host DRAM ring never received a DMA write"
        );
        // And healthy firmware kept the watchdog quiet throughout.
        for r in 0..4 {
            assert_eq!(h.sys.rpus()[r].watchdog_fires(), 0, "RPU {r}");
        }
    }
}
