//! The Pigasus IDS/IPS port (paper §7.1, Appendices A–B).
//!
//! The string/port-matching engines are the [`rosebud_accel::PigasusMatcher`]
//! model (16 engines per RPU in the 8-RPU layout). Two firmware variants
//! mirror the paper's two configurations:
//!
//! * **Hardware reordering** ([`ReorderMode::Hardware`]): TCP reassembly is
//!   assumed to live in the (round-robin) load balancer, as the paper models
//!   it — "their reassembler accelerator keeps the state per flow, and
//!   attaches the required state to each packet, so no state needs to be
//!   kept within RPUs" (§7.1.2). The firmware is the Appendix B loop: parse,
//!   kick the matcher, drain matches, append rule IDs, route.
//! * **Software reordering** ([`ReorderMode::Software`]): the hash-based LB
//!   pins flows to RPUs and prepends the 4-byte flow hash; firmware keeps a
//!   32 K-entry × 16 B flow table in scratch memory, buffers out-of-order
//!   packets (up to half the slots), times out stale flows, and punts
//!   collisions/overflow to the host — exactly the §7.1.2 design.
//!
//! The firmware is *native* (Rust logic + explicit cycle charges): the paper
//! itself characterizes this code in cycles per packet — 61 safe-TCP /
//! 59 safe-UDP / 82 attack for hardware reordering, ≈138 rising with size
//! for software reordering (Fig. 9) — and those are the constants charged
//! here. DESIGN.md records this substitution.

use rosebud_accel::{
    PigasusMatcher, Rule, RuleSet, PIG_CTRL_REG, PIG_DMA_ADDR_REG, PIG_DMA_LEN_REG,
    PIG_DMA_STAT_REG, PIG_MATCH_REG, PIG_PORTS_REG, PIG_RULE_ID_REG, PIG_SLOT_REG, PIG_STATE_H_REG,
};
use rosebud_core::{
    port, Desc, Firmware, HashLb, Rosebud, RosebudConfig, RoundRobinLb, RpuIo, RpuProgram,
};

/// Which reassembly configuration to build (§7.1.3 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderMode {
    /// Reordering handled before the RPUs (round-robin LB; packets arrive
    /// in order).
    Hardware,
    /// Reordering in firmware on the RISC-V cores (hash LB, flow table).
    Software,
}

/// Cycle-cost constants calibrated to Fig. 9.
mod cost {
    /// Parse + accelerator kick for a TCP packet (HW reorder): total with
    /// [`EOP_DRAIN`] is the paper's 61 cycles.
    pub const RX_TCP: u64 = 40;
    /// Parse + kick for UDP (two cycles shorter header path): totals 59.
    pub const RX_UDP: u64 = 38;
    /// Draining the end-of-packet marker and sending the packet.
    pub const EOP_DRAIN: u64 = 20;
    /// Handling one match: read rule id, append to packet, re-route (the
    /// 82-cycle attack path = 61 + 21).
    pub const PER_MATCH: u64 = 21;
    /// Extra flow-table work in software-reordering mode (totals ≈138 at
    /// small sizes, Fig. 9).
    pub const SW_FLOW_TABLE: u64 = 77;
    /// Cost of parking an out-of-order packet in the reorder buffer.
    pub const SW_BUFFER: u64 = 30;
    /// Non-IP packet drop path.
    pub const DROP: u64 = 18;

    /// Software reordering loses accelerator overlap as payloads grow
    /// ("less overlapping opportunity for the management software and the
    /// hardware accelerator", §7.1.4): ≈138 cycles at 64 B rising to ≈200
    /// at 2048 B, with the rise starting once payloads outgrow the overlap
    /// window (~800 B).
    pub fn sw_size_penalty(size: u32) -> u64 {
        (u64::from(size.saturating_sub(800)) * 48) / 1000
    }
}

/// One 16-byte flow-table entry (32 K of them cover 15 hash bits; the LB's
/// 3 bits of RPU selection extend coverage to 18 of 32 bits, §7.1.2).
#[derive(Debug, Clone, Copy, Default)]
struct FlowEntry {
    /// Full 32-bit hash, to detect collisions on the 15-bit index.
    hash: u32,
    /// Next expected TCP sequence number.
    expect_seq: u32,
    /// Cycle of the last packet (timeout eviction).
    last_seen: u64,
    /// Entry in use.
    valid: bool,
}

/// An out-of-order packet parked until its predecessor arrives.
#[derive(Debug, Clone, Copy)]
struct Parked {
    desc: Desc,
    hash: u32,
    seq: u32,
    payload_len: u32,
    payload_off: u32,
    ports: u32,
}

/// Number of flow-table entries: 32 K × 16 B = 0.5 MB of scratch (§7.1.2).
pub const FLOW_TABLE_ENTRIES: usize = 32 * 1024;
/// Flow idle timeout in cycles (≈1 ms: "older flows quickly time out").
pub const FLOW_TIMEOUT_CYCLES: u64 = 250_000;

/// The per-RPU Pigasus firmware.
pub struct PigasusFirmware {
    mode: ReorderMode,
    /// Waiting for accelerator job-queue space.
    pending_kick: Option<(Desc, u32, u32)>, // (desc, payload_off, ports)
    /// Per-slot routing decision made while draining matches.
    slot_matched: Vec<bool>,
    /// Descriptor for each in-flight slot (the Appendix B context array).
    slot_desc: Vec<Option<Desc>>,
    flow_table: Vec<FlowEntry>,
    parked: Vec<Parked>,
    max_parked: usize,
    /// Counters surfaced through the host debug channel.
    pub packets: u64,
    /// Packets whose matches were appended and routed to the host.
    pub matched_packets: u64,
    /// Out-of-order packets buffered then released in order.
    pub reordered: u64,
    /// Collisions/overflow punted to the host unprocessed.
    pub punted: u64,
}

impl PigasusFirmware {
    /// Creates firmware for `mode` with `slots` packet slots.
    pub fn new(mode: ReorderMode, slots: usize) -> Self {
        Self {
            mode,
            pending_kick: None,
            slot_matched: vec![false; slots],
            slot_desc: vec![None; slots],
            flow_table: match mode {
                ReorderMode::Hardware => Vec::new(),
                ReorderMode::Software => vec![FlowEntry::default(); FLOW_TABLE_ENTRIES],
            },
            parked: Vec::new(),
            max_parked: slots / 2, // "up to half of our packet slots"
            packets: 0,
            matched_packets: 0,
            reordered: 0,
            punted: 0,
        }
    }

    /// Kicks the matcher for a packet, or parks the kick when the wrapper's
    /// job FIFO is full.
    fn kick_accel(&mut self, io: &mut RpuIo<'_>, desc: Desc, payload_off: u32, ports: u32) {
        let free = (io.accel_read(PIG_DMA_STAT_REG) >> 16) & 0xff;
        if free == 0 {
            self.pending_kick = Some((desc, payload_off, ports));
            return;
        }
        // The accelerator's exclusive URAM port addresses packet memory
        // directly (no bus decode), so the DMA address is PMEM-relative.
        io.accel_write(
            PIG_DMA_ADDR_REG,
            desc.data - rosebud_core::memmap::PMEM_BASE + payload_off,
        );
        io.accel_write(PIG_DMA_LEN_REG, desc.len.saturating_sub(payload_off));
        io.accel_write(PIG_PORTS_REG, ports);
        io.accel_write(PIG_STATE_H_REG, 0x01ff_ffff);
        io.accel_write(PIG_SLOT_REG, u32::from(desc.tag));
        io.accel_write(PIG_CTRL_REG, 1);
        self.slot_matched[desc.tag as usize] = false;
        // Stash the descriptor so the drain path can send it: slot-indexed.
        self.slot_desc[desc.tag as usize] = Some(desc);
    }

    /// Parses the Ethernet/IP headers out of the low-latency header copy and
    /// processes one received packet (the Appendix B `slot_rx_packet`).
    fn rx_packet(&mut self, io: &mut RpuIo<'_>, desc: Desc) {
        self.packets += 1;
        // In software mode the LB prepended the 4-byte flow hash.
        let hash_off = match self.mode {
            ReorderMode::Hardware => 0usize,
            ReorderMode::Software => 4,
        };
        let header: Vec<u8> = io.header(desc.tag).to_vec();
        if header.len() < hash_off + 34 {
            io.send(Desc { len: 0, ..desc });
            io.charge(cost::DROP);
            return;
        }
        let eth_type = u16::from_be_bytes([header[hash_off + 12], header[hash_off + 13]]);
        if eth_type != 0x0800 {
            io.send(Desc { len: 0, ..desc });
            io.charge(cost::DROP);
            return;
        }
        let protocol = header[hash_off + 23];
        let is_tcp = match protocol {
            6 => true,
            17 => false,
            _ => {
                io.send(Desc { len: 0, ..desc });
                io.charge(cost::DROP);
                return;
            }
        };
        let l4 = hash_off + 34;
        let src_port = u16::from_be_bytes([header[l4], header[l4 + 1]]);
        let dst_port = u16::from_be_bytes([header[l4 + 2], header[l4 + 3]]);
        let ports = u32::from(src_port) << 16 | u32::from(dst_port);
        let payload_off = (l4 + if is_tcp { 20 } else { 8 }) as u32;

        let base = if is_tcp { cost::RX_TCP } else { cost::RX_UDP };
        match self.mode {
            ReorderMode::Hardware => {
                io.charge(base);
                self.kick_accel(io, desc, payload_off, ports);
            }
            ReorderMode::Software => {
                io.charge(base + cost::SW_FLOW_TABLE + cost::sw_size_penalty(desc.len));
                if !is_tcp {
                    self.kick_accel(io, desc, payload_off, ports);
                    return;
                }
                let hash = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
                let seq = u32::from_be_bytes([
                    header[l4 + 4],
                    header[l4 + 5],
                    header[l4 + 6],
                    header[l4 + 7],
                ]);
                let payload_len = desc.len.saturating_sub(payload_off);
                let idx = (hash & (FLOW_TABLE_ENTRIES as u32 - 1)) as usize;
                let now = io.now();
                let entry = &mut self.flow_table[idx];
                let fresh =
                    !entry.valid || now.saturating_sub(entry.last_seen) > FLOW_TIMEOUT_CYCLES;
                if fresh {
                    *entry = FlowEntry {
                        hash,
                        expect_seq: seq.wrapping_add(payload_len.max(1)),
                        last_seen: now,
                        valid: true,
                    };
                    self.kick_accel(io, desc, payload_off, ports);
                    self.release_parked(io, hash);
                    return;
                }
                if entry.hash != hash {
                    // 15-bit index collision with a live flow: punt to host.
                    self.punted += 1;
                    io.send(Desc {
                        port: port::HOST,
                        ..desc
                    });
                    return;
                }
                entry.last_seen = now;
                if seq == entry.expect_seq {
                    entry.expect_seq = seq.wrapping_add(payload_len.max(1));
                    self.kick_accel(io, desc, payload_off, ports);
                    self.release_parked(io, hash);
                } else if seq.wrapping_sub(entry.expect_seq) < u32::MAX / 2 {
                    // Future segment: park until the gap fills.
                    if self.parked.len() >= self.max_parked {
                        self.punted += 1;
                        io.send(Desc {
                            port: port::HOST,
                            ..desc
                        });
                        return;
                    }
                    io.charge(cost::SW_BUFFER);
                    self.parked.push(Parked {
                        desc,
                        hash,
                        seq,
                        payload_len,
                        payload_off,
                        ports,
                    });
                } else {
                    // Duplicate/old segment: scan it anyway (idempotent).
                    self.kick_accel(io, desc, payload_off, ports);
                }
            }
        }
    }

    /// Releases parked packets whose gap just closed.
    fn release_parked(&mut self, io: &mut RpuIo<'_>, hash: u32) {
        loop {
            let idx = (hash & (FLOW_TABLE_ENTRIES as u32 - 1)) as usize;
            let expect = self.flow_table[idx].expect_seq;
            let Some(pos) = self
                .parked
                .iter()
                .position(|p| p.hash == hash && p.seq == expect)
            else {
                break;
            };
            let parked = self.parked.swap_remove(pos);
            self.reordered += 1;
            self.flow_table[idx].expect_seq = parked.seq.wrapping_add(parked.payload_len.max(1));
            io.charge(cost::SW_FLOW_TABLE);
            self.kick_accel(io, parked.desc, parked.payload_off, parked.ports);
        }
    }

    /// Drains the matcher's result FIFO (the Appendix B `slot_match`).
    fn drain_matches(&mut self, io: &mut RpuIo<'_>) {
        while io.accel_read(PIG_MATCH_REG) != 0 {
            let rule_id = io.accel_read(PIG_RULE_ID_REG);
            let slot = io.accel_read(PIG_SLOT_REG) as usize;
            io.accel_write(PIG_CTRL_REG, 2); // release the entry
            let Some(desc) = self.slot_desc.get(slot).copied().flatten() else {
                continue;
            };
            if rule_id != 0 {
                // Append the rule id to the packet and mark it for the host.
                io.charge(cost::PER_MATCH);
                let aligned = (desc.data + desc.len + 3) & !3;
                io.pmem_write(aligned, &rule_id.to_le_bytes());
                let new_len = aligned + 4 - desc.data;
                self.slot_desc[slot] = Some(Desc {
                    len: new_len,
                    ..desc
                });
                self.slot_matched[slot] = true;
            } else {
                // End of packet: route and free the slot.
                io.charge(cost::EOP_DRAIN);
                let matched = self.slot_matched[slot];
                let out = if matched {
                    self.matched_packets += 1;
                    Desc {
                        port: port::HOST,
                        ..desc
                    }
                } else {
                    // Safe traffic goes out the other physical port, minus
                    // the prepended hash in software mode.
                    let strip = match self.mode {
                        ReorderMode::Hardware => 0,
                        ReorderMode::Software => 4,
                    };
                    Desc {
                        port: desc.port ^ 1,
                        data: desc.data + strip,
                        len: desc.len - strip,
                        ..desc
                    }
                };
                io.send(out);
                self.slot_desc[slot] = None;
                return; // "Go back to main loop when done with a packet"
            }
        }
    }
}

impl Firmware for PigasusFirmware {
    fn name(&self) -> &str {
        match self.mode {
            ReorderMode::Hardware => "pigasus-hw-reorder",
            ReorderMode::Software => "pigasus-sw-reorder",
        }
    }

    fn tick(&mut self, io: &mut RpuIo<'_>) {
        // Retry a kick that was blocked on the accelerator job queue.
        if let Some((desc, off, ports)) = self.pending_kick.take() {
            self.kick_accel(io, desc, off, ports);
            if self.pending_kick.is_some() {
                return; // still blocked; don't accept more work
            }
        }
        if io.rx_ready() && self.pending_kick.is_none() {
            if let Some(desc) = io.rx_pop() {
                self.rx_packet(io, desc);
            }
        }
        self.drain_matches(io);
    }

    fn is_idle(&self) -> bool {
        self.pending_kick.is_none()
            && self.parked.is_empty()
            && self.slot_desc.iter().all(Option::is_none)
    }
}

/// Builds the §7.1 IDS system: 8 RPUs × 16 engines, the LB implied by the
/// reorder mode, 32 packet slots per RPU (the Appendix B configuration).
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_pigasus_system(mode: ReorderMode, rules: Vec<Rule>) -> Result<Rosebud, String> {
    build_pigasus_system_with(mode, rules, 8, 16)
}

/// [`build_pigasus_system`] with explicit RPU and engine counts.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_pigasus_system_with(
    mode: ReorderMode,
    rules: Vec<Rule>,
    rpus: usize,
    engines: u32,
) -> Result<Rosebud, String> {
    let mut cfg = RosebudConfig::with_rpus(rpus);
    cfg.slots_per_rpu = 32;
    let compiled = RuleSet::compile(rules);
    let slots = cfg.slots_per_rpu;
    let builder = Rosebud::builder(cfg)
        .accelerator(move |_| Box::new(PigasusMatcher::new(compiled.clone(), engines)))
        .firmware(move |_| RpuProgram::Native(Box::new(PigasusFirmware::new(mode, slots))));
    match mode {
        ReorderMode::Hardware => builder.load_balancer(Box::new(RoundRobinLb::new())),
        ReorderMode::Software => builder.load_balancer(Box::new(HashLb::new())),
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{attack_trace, synthetic_rules};
    use rosebud_core::Harness;
    use rosebud_net::{AttackMixGen, FlowTrafficGen};

    fn run_ips(mode: ReorderMode, size: usize, gbps: f64, cycles: u64) -> (Harness, usize) {
        let rules = synthetic_rules(32, 17);
        let sys = build_pigasus_system_with(mode, rules.clone(), 4, 16).unwrap();
        let base = FlowTrafficGen::new(64, size, 0.003, 23);
        let payloads: Vec<Vec<u8>> = rules.iter().map(|r| r.pattern.clone()).collect();
        let gen = AttackMixGen::new(base, 0.01, payloads, 29);
        let mut h = Harness::new(sys, Box::new(gen), gbps);
        h.run(cycles);
        (h, rules.len())
    }

    #[test]
    fn hardware_mode_delivers_and_flags_attacks() {
        let (h, _) = run_ips(ReorderMode::Hardware, 512, 10.0, 60_000);
        assert!(h.received() > 100, "forwarded {}", h.received());
        assert!(
            h.host_received() > 0,
            "attack packets must reach the host with rule ids"
        );
    }

    #[test]
    fn software_mode_delivers_and_flags_attacks() {
        let (h, _) = run_ips(ReorderMode::Software, 512, 10.0, 80_000);
        assert!(h.received() > 100, "forwarded {}", h.received());
        assert!(h.host_received() > 0);
    }

    #[test]
    fn matched_host_packets_carry_appended_rule_ids() {
        let rules = synthetic_rules(8, 31);
        let sys = build_pigasus_system_with(ReorderMode::Hardware, rules.clone(), 4, 16).unwrap();
        let mut h = Harness::new(sys, Box::new(crate::firewall::NoopGen), 0.0).keep_output(true);
        let trace = attack_trace(&rules, 256);
        for pkt in &trace {
            let mut p = pkt.clone();
            loop {
                match h.sys.inject(p) {
                    Ok(()) => break,
                    Err(back) => {
                        p = back;
                        h.tick();
                    }
                }
            }
            h.run(4);
        }
        h.run(30_000);
        assert_eq!(
            h.host_received() as usize,
            trace.len(),
            "all attacks flagged"
        );
        let collected = h.collected();
        for pkt in collected {
            assert!(pkt.len() > 256, "rule id appended to {}", pkt.id);
            let tail = &pkt.bytes()[pkt.bytes().len() - 4..];
            let id = u32::from_le_bytes(tail.try_into().unwrap());
            assert!(
                rules.iter().any(|r| r.id == id),
                "trailing id {id} is a rule"
            );
        }
    }

    #[test]
    fn hw_reorder_cycles_per_packet_near_61() {
        // Fig. 9: ~60.2 cycles/packet for small packets under HW reorder.
        let (h, _) = run_ips(ReorderMode::Hardware, 128, 30.0, 120_000);
        let m = {
            let mut h = h;
            h.begin_window();
            h.run(60_000);
            h.measure()
        };
        let rpus = 4.0;
        let cycles_per_packet = rpus * 60_000.0 / m.packets as f64;
        assert!(
            (55.0..70.0).contains(&cycles_per_packet),
            "HW reorder: {cycles_per_packet:.1} cycles/packet, paper ~61"
        );
    }

    #[test]
    fn sw_reorder_keeps_flows_and_reorders() {
        let rules = synthetic_rules(16, 41);
        let sys = build_pigasus_system_with(ReorderMode::Software, rules, 4, 16).unwrap();
        let gen = FlowTrafficGen::new(32, 256, 0.05, 51);
        let mut h = Harness::new(sys, Box::new(gen), 5.0);
        h.run(150_000);
        let reordered: u64 = (0..4)
            .map(|_r| 0u64) // firmware counters are internal; check via drops
            .sum();
        let _ = reordered;
        assert!(h.received() > 500);
        // Conservation: nothing lost (drops only from intentional punts).
        assert!(
            h.sys.drop_count() < 20,
            "unexpected drops: {}",
            h.sys.drop_count()
        );
    }
}
