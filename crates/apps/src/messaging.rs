//! Firmware for the inter-RPU broadcast-messaging experiments (§6.3).
//!
//! "We time-stamp each message by writing the time-stamp value in the
//! broadcast region, and upon arrival compare the current time against the
//! transmit time." Two scenarios: a fixed rate of sparse messages
//! (72–92 ns observed), and every RPU blasting as fast as it can
//! (1596–1680 ns for 16 RPUs, dominated by the 18-slot outbox drained once
//! per 16-cycle round-robin grant).

use rosebud_core::{Firmware, Rosebud, RosebudConfig, RoundRobinLb, RpuIo, RpuProgram};

/// Native firmware that writes a broadcast message every `period` cycles
/// (0 = as fast as the outbox accepts), using its RPU id to pick a distinct
/// region word.
pub struct BcastSender {
    period: u64,
    next_at: u64,
    /// Messages sent.
    pub sent: u64,
}

impl BcastSender {
    /// Creates a sender with the given inter-message period in cycles.
    pub fn new(period: u64) -> Self {
        Self {
            period,
            next_at: 0,
            sent: 0,
        }
    }
}

impl Firmware for BcastSender {
    fn name(&self) -> &str {
        "bcast-sender"
    }

    fn tick(&mut self, io: &mut RpuIo<'_>) {
        let now = io.now();
        if now < self.next_at {
            return;
        }
        // Each RPU owns one word of the semi-coherent region; the value is
        // the transmit timestamp (§6.3's measurement method). The write
        // blocks (charges stall) when the 18-entry outbox is full.
        let offset = (io.rpu_id() as u32) * 4;
        io.broadcast(offset, now as u32);
        self.sent += 1;
        self.next_at = now + self.period.max(1);
    }
}

/// Builds a system of broadcast senders for the §6.3 latency experiments.
/// Delivery latency is recorded centrally by
/// [`Rosebud::bcast_latency`](rosebud_core::Rosebud::bcast_latency).
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_bcast_system(rpus: usize, period: u64) -> Result<Rosebud, String> {
    Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Native(Box::new(BcastSender::new(period))))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_broadcast_latency_is_tens_of_ns() {
        // §6.3: "In the normal scenario of sparse messages, we observed a
        // latency between 72 to 92 ns."
        let mut sys = build_bcast_system(16, 1000).unwrap();
        sys.run(50_000);
        let stats = sys.bcast_latency();
        assert!(stats.count() > 100, "only {} deliveries", stats.count());
        let (min, max) = (stats.min(), stats.max());
        assert!(
            min >= 40.0 && max <= 150.0,
            "sparse latency {min:.0}–{max:.0} ns, paper: 72–92"
        );
    }

    #[test]
    fn saturated_broadcast_latency_is_microseconds() {
        // §6.3: flat-out senders see 1596–1680 ns on 16 RPUs (outbox depth
        // × round-robin grant period dominates).
        let mut sys = build_bcast_system(16, 0).unwrap();
        sys.run(60_000);
        let stats = sys.bcast_latency();
        // Skip the cold-start ramp: take the last half of samples.
        let samples = stats.samples();
        let steady = &samples[samples.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!(
            (1100.0..2000.0).contains(&mean),
            "saturated latency {mean:.0} ns, paper: 1596–1680"
        );
    }

    #[test]
    fn eight_rpu_saturated_latency_halves() {
        // The grant period is num_rpus cycles, so 8 RPUs wait half as long.
        let mut sys = build_bcast_system(8, 0).unwrap();
        sys.run(60_000);
        let samples = sys.bcast_latency().samples().to_vec();
        let steady = &samples[samples.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!(
            (500.0..1100.0).contains(&mean),
            "8-RPU saturated latency {mean:.0} ns"
        );
    }

    #[test]
    fn broadcast_values_visible_in_every_mirror() {
        let mut sys = build_bcast_system(4, 500).unwrap();
        sys.run(5_000);
        // Every RPU's mirror should hold a timestamp from every sender.
        for r in 0..4 {
            let rpus = sys.rpus();
            let mirror = rpus[r].inner().bcast_mirror();
            for sender in 0..4 {
                let word =
                    u32::from_le_bytes(mirror[sender * 4..sender * 4 + 4].try_into().unwrap());
                assert!(word > 0, "RPU {r} mirror missing sender {sender}");
            }
        }
    }
}
