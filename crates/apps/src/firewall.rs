//! The blacklisting firewall case study (paper §7.2, Appendix C).
//!
//! A firewall "checks every single packet, and drops the packets whose IP
//! matches a blacklist, otherwise they are forwarded to the other Ethernet
//! interface." The accelerator is a two-cycle IP-prefix matcher generated
//! from the blacklist ([`rosebud_accel::FirewallMatcher`]); the firmware
//! below is the Appendix C loop in our RV32 assembly.

use rosebud_accel::FirewallMatcher;
use rosebud_core::{Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud_kernel::SimRng;
use rosebud_net::{PacketBuilder, Trace};
use rosebud_riscv::{assemble, Image};

/// Assembly source of the firewall firmware — the Appendix C C code,
/// hand-lowered: parse EtherType from the low-latency header copy, feed the
/// source IP to the accelerator over MMIO, read the match flag, and either
/// drop (send with length zero) or forward on the other port.
pub const FIREWALL_ASM: &str = "
    .equ IO,   0x02000000
    .equ HDR,  0x00804000        # header slots: DMEM_BASE + DMEM_SIZE/2
    .equ ACC,  0x03000000        # IO_EXT_BASE
        li t0, IO
        li t1, HDR
        li t6, ACC
        li t5, 0x0008            # EtherType 0x0800 as loaded little-endian
        li t4, 0x01000000        # port XOR mask
    poll:
        lw a0, 0x00(t0)          # in_pkt_ready()
        beqz a0, poll
        lw a1, 0x04(t0)          # read descriptor
        lw a2, 0x08(t0)
        sw zero, 0x0c(t0)        # release
        srli a3, a1, 16          # slot tag
        andi a3, a3, 0xff
        slli a4, a3, 7           # * 128-byte header slots
        add a4, a4, t1
        lhu a5, 12(a4)           # eth_type
        bne a5, t5, drop         # non-IPv4 -> drop (Appendix C)
        lw a6, 26(a4)            # src_ip (raw lw of the wire field)
        sw a6, 0x00(t6)          # ACC_SRC_IP: start the 2-cycle lookup
        lbu a7, 0x04(t6)         # ACC_FW_MATCH (blocking read)
        bnez a7, drop
        xor a1, a1, t4           # desc->port ^= 1
        sw a1, 0x10(t0)
        sw a2, 0x14(t0)          # pkt_send(desc)
        j poll
    drop:
        srli a1, a1, 16          # desc->len = 0
        slli a1, a1, 16
        sw a1, 0x10(t0)
        sw a2, 0x14(t0)          # pkt_send(desc) frees the slot
        j poll
";

/// Assembles the firewall firmware.
///
/// # Panics
///
/// Panics only if the embedded source fails to assemble (a build bug).
pub fn firewall_image() -> Image {
    assemble(FIREWALL_ASM).expect("embedded firewall firmware must assemble")
}

/// Parses a blacklist in the common textual forms: bare IPv4 addresses, or
/// emerging-threats `PF` drop rules (`block drop quick from 192.0.2.0/24 to
/// any`). Comments (`#`) and blank lines are skipped; the /24-and-coarser
/// structure of the generated accelerator means only the top 24 bits of
/// each entry matter.
pub fn parse_blacklist(text: &str) -> Vec<[u8; 4]> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        for token in line.split_whitespace() {
            let addr = token.split('/').next().unwrap_or(token);
            let parts: Vec<&str> = addr.split('.').collect();
            if parts.len() != 4 {
                continue;
            }
            if let (Ok(a), Ok(b), Ok(c), Ok(d)) = (
                parts[0].parse::<u8>(),
                parts[1].parse::<u8>(),
                parts[2].parse::<u8>(),
                parts[3].parse::<u8>(),
            ) {
                out.push([a, b, c, d]);
                break; // one address per rule line
            }
        }
    }
    out
}

/// Generates a deterministic synthetic blacklist of `n` addresses spread
/// over many 9-bit groups — the stand-in for the proprietary
/// emerging-threats feed (1050 entries in the paper).
pub fn synthetic_blacklist(n: usize, seed: u64) -> Vec<[u8; 4]> {
    let mut rng = SimRng::seed_from(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let ip = [
            1 + rng.below(223) as u8, // avoid 0.x and multicast
            rng.below(256) as u8,
            rng.below(256) as u8,
            0,
        ];
        if seen.insert([ip[0], ip[1], ip[2]]) {
            out.push(ip);
        }
    }
    out
}

/// Builds the §7.2 firewall system: `rpus` RPUs each hosting the generated
/// IP matcher and running the Appendix C firmware, behind a round-robin LB.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_firewall_system(rpus: usize, blacklist: &[[u8; 4]]) -> Result<Rosebud, String> {
    let image = firewall_image();
    let blacklist = blacklist.to_vec();
    Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .accelerator(move |_| Box::new(FirewallMatcher::from_prefixes(&blacklist)))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
}

/// Generates the verification trace of Appendix D: one packet per blacklist
/// entry plus `safe` packets from clean addresses, all TCP, `size` bytes.
pub fn firewall_trace(blacklist: &[[u8; 4]], safe: usize, size: usize) -> Trace {
    let mut trace = Trace::new();
    let mut id = 0u64;
    for ip in blacklist {
        trace.push(
            PacketBuilder::new()
                .src_ip(*ip)
                .dst_ip([172, 16, 0, 1])
                .tcp(40_000, 80)
                .pad_to(size)
                .port((id % 2) as u8)
                .build_with(id, 0),
        );
        id += 1;
    }
    for i in 0..safe {
        trace.push(
            PacketBuilder::new()
                .src_ip([240, 0, (i >> 8) as u8, i as u8]) // class E: never blacklisted
                .dst_ip([172, 16, 0, 1])
                .tcp(40_001, 80)
                .pad_to(size)
                .port((id % 2) as u8)
                .build_with(id, 0),
        );
        id += 1;
    }
    trace
}

/// Ground truth: how many packets of `trace` the blacklist should drop.
pub fn expected_drops(trace: &Trace, blacklist: &[[u8; 4]]) -> usize {
    let matcher = FirewallMatcher::from_prefixes(blacklist);
    trace
        .iter()
        .filter(|pkt| {
            pkt.ipv4()
                .map(|ip| matcher.is_blacklisted(ip.src_u32()))
                .unwrap_or(true) // non-IP drops too
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_core::Harness;
    use rosebud_net::{AttackMixGen, FixedSizeGen};

    #[test]
    fn parse_blacklist_handles_common_formats() {
        let text = "
            # emerging threats sample
            block drop quick from 192.0.2.0/24 to any
            198.51.100.7
            block drop quick proto tcp from 203.0.113.5 to any
            not-an-ip line
        ";
        let ips = parse_blacklist(text);
        assert_eq!(
            ips,
            vec![[192, 0, 2, 0], [198, 51, 100, 7], [203, 0, 113, 5]]
        );
    }

    #[test]
    fn synthetic_blacklist_is_deterministic_and_unique_prefixes() {
        let a = synthetic_blacklist(1050, 42);
        let b = synthetic_blacklist(1050, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1050);
        let prefixes: std::collections::HashSet<[u8; 3]> =
            a.iter().map(|ip| [ip[0], ip[1], ip[2]]).collect();
        assert_eq!(prefixes.len(), 1050, "prefixes must be distinct");
    }

    #[test]
    fn firewall_drops_exactly_the_blacklist() {
        let blacklist = synthetic_blacklist(50, 3);
        let sys = build_firewall_system(4, &blacklist).unwrap();
        let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
        // Inject the verification trace directly at low rate.
        let trace = firewall_trace(&blacklist, 4, 128);
        let expected_dropped = expected_drops(&trace, &blacklist);
        assert_eq!(expected_dropped, 50);
        let total = trace.len();
        for pkt in &trace {
            let mut p = pkt.clone();
            loop {
                match h.sys.inject(p) {
                    Ok(()) => break,
                    Err(back) => {
                        p = back;
                        h.tick();
                    }
                }
            }
            h.tick();
        }
        h.run(20_000);
        assert_eq!(h.received() as usize, total - expected_dropped);
        assert_eq!(h.sys.drop_count() as usize, expected_dropped);
    }

    #[test]
    fn firewall_forwards_at_rate_with_attack_mix() {
        let blacklist = synthetic_blacklist(200, 9);
        let sys = build_firewall_system(8, &blacklist).unwrap();
        let base = FixedSizeGen::new(256, 2);
        let gen = AttackMixGen::new(base, 0.02, Vec::new(), 5).with_attack_ips(blacklist.clone());
        let mut h = Harness::new(sys, Box::new(gen), 40.0);
        h.run(30_000);
        h.begin_window();
        h.run(60_000);
        let m = h.measure();
        assert!(m.gbps > 30.0, "firewall forwarded only {:.1} Gbps", m.gbps);
        assert!(h.sys.drop_count() > 0, "attack packets must be dropped");
    }
}

/// A generator paired with a 0 Gbps target when a test injects its own
/// trace through [`Rosebud::inject`](rosebud_core::Rosebud::inject).
#[derive(Debug)]
pub struct NoopGen;

impl rosebud_net::TrafficGen for NoopGen {
    fn generate(&mut self, id: u64, ts: u64) -> rosebud_net::Packet {
        rosebud_net::Packet::new(id, vec![0; 60], 0, ts)
    }

    fn next_size(&self) -> usize {
        60
    }
}
