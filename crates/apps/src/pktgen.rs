//! The tester FPGA (§6, Appendix D): "The tester FPGA is programmed with
//! the Rosebud framework with a 16-RPU design and is mostly used as a
//! high-speed packet generator."
//!
//! [`PktGenFirmware`] is the `basic_pkt_gen` program: each RPU composes a
//! frame in its own packet memory once, then transmits descriptors for it in
//! a 16-cycle loop — which is why the paper notes "below 128-byte, packets
//! have reduced packet generation performance" (16 RPUs × 250 MHz / 16
//! cycles = 250 Mpps of generation, short of the 284 Mpps 64-byte line
//! rate). [`BackToBack`] cross-connects two complete Rosebud systems with
//! two 100 G cables, exactly like the paper's testbed.

use rosebud_core::{
    memmap, Desc, Firmware, Measurement, Rosebud, RosebudConfig, RoundRobinLb, RpuIo, RpuProgram,
    SELF_TAG,
};
use rosebud_net::{Packet, PacketBuilder};

/// The `basic_pkt_gen` firmware: transmit the same pre-composed frame in a
/// fixed-cycle loop, alternating physical ports.
pub struct PktGenFirmware {
    size: usize,
    /// Cycles per transmitted packet (the paper's loop is 16).
    loop_cycles: u64,
    composed: bool,
    sent: u64,
    scratch: u32,
}

impl PktGenFirmware {
    /// A generator of `size`-byte frames at one packet per `loop_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `size < 60` or `loop_cycles == 0`.
    pub fn new(size: usize, loop_cycles: u64) -> Self {
        assert!(size >= 60, "frame size below Ethernet minimum");
        assert!(loop_cycles > 0, "loop must take at least a cycle");
        Self {
            size,
            loop_cycles,
            composed: false,
            sent: 0,
            scratch: memmap::PMEM_BASE + 0x200,
        }
    }
}

impl Firmware for PktGenFirmware {
    fn name(&self) -> &str {
        "basic-pkt-gen"
    }

    fn tick(&mut self, io: &mut RpuIo<'_>) {
        if !self.composed {
            // Compose the template frame once, in this RPU's own packet
            // memory (the generator never consumes an LB slot).
            let rpu = io.rpu_id() as u8;
            let pkt = PacketBuilder::new()
                .src_ip([10, 100, rpu, 1])
                .dst_ip([10, 200, 0, 1])
                .udp(30_000 + u16::from(rpu), 9)
                .pad_to(self.size)
                .build();
            io.pmem_write(self.scratch, pkt.bytes());
            self.composed = true;
            io.charge(60); // one-time setup
            return;
        }
        let port = ((self.sent + io.rpu_id() as u64) % 2) as u8;
        let sent = io.send(Desc {
            tag: SELF_TAG,
            len: self.size as u32,
            port,
            data: self.scratch,
        });
        if sent {
            self.sent += 1;
            io.charge(self.loop_cycles - 1);
        }
        // On backpressure (egress queue full), retry next cycle.
    }
}

/// Builds the paper's tester image: 16 RPUs of `basic_pkt_gen`, LB receive
/// mask cleared ("we set the RPUs with incoming traffic to none, as we are
/// only generating packets", Appendix D).
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_pktgen_system(rpus: usize, size: usize) -> Result<Rosebud, String> {
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Native(Box::new(PktGenFirmware::new(size, 16))))
        .build()?;
    sys.lb_host_write(rosebud_core::lb_regs::ENABLE_LO, 0); // RECV=0x0000
    Ok(sys)
}

/// Two Rosebud systems cross-connected with two 100 G cables — the complete
/// §6 testbed: one FPGA generates, the other is the device under test, and
/// the generator's receive side measures what comes back.
pub struct BackToBack {
    /// The traffic source/sink FPGA.
    pub tester: Rosebud,
    /// The device under test.
    pub dut: Rosebud,
    received: u64,
    received_bytes: u64,
    window_start: u64,
    window_received: u64,
    window_bytes: u64,
    capture_want: usize,
    captured: Vec<Packet>,
}

impl BackToBack {
    /// Cross-connects the two systems.
    pub fn new(tester: Rosebud, dut: Rosebud) -> Self {
        assert_eq!(
            tester.config().num_ports,
            dut.config().num_ports,
            "cable count mismatch"
        );
        Self {
            tester,
            dut,
            received: 0,
            received_bytes: 0,
            window_start: 0,
            window_received: 0,
            window_bytes: 0,
            capture_want: 0,
            captured: Vec::new(),
        }
    }

    /// Advances both FPGAs one cycle and moves frames across the cables.
    pub fn tick(&mut self) {
        self.tester.tick();
        self.dut.tick();
        let ports = self.tester.config().num_ports;
        for p in 0..ports {
            for pkt in self.tester.take_output(p) {
                // Wire p of the tester lands on wire p of the DUT.
                let mut pkt = pkt;
                pkt.port = p as u8;
                // The DUT's MAC may be saturated: the cable has no buffer,
                // so an un-absorbable frame is lost (counted at the DUT's
                // MAC in real hardware; counted here as tester-side drop).
                let _ = self.dut.inject(pkt);
            }
            for pkt in self.dut.take_output(p) {
                self.received += 1;
                self.received_bytes += pkt.len();
                self.window_received += 1;
                self.window_bytes += pkt.len();
                if self.captured.len() < self.capture_want {
                    self.captured.push(pkt);
                }
            }
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Starts a measurement window on the tester's receive side.
    pub fn begin_window(&mut self) {
        self.window_start = self.tester.now();
        self.window_received = 0;
        self.window_bytes = 0;
    }

    /// Receive-side results since the window began (the tester's "RX bytes"
    /// table of Appendix D).
    pub fn measure(&self) -> Measurement {
        let cycles = self.tester.now().saturating_sub(self.window_start).max(1);
        let secs = cycles as f64 * self.tester.config().ns_per_cycle() / 1e9;
        Measurement {
            gbps: self.window_bytes as f64 * 8.0 / secs / 1e9,
            mpps: self.window_received as f64 / secs / 1e6,
            packets: self.window_received,
            injected: 0,
            cycles,
        }
    }

    /// Frames the tester has received back in total.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Runs the testbed until `n` returning frames have been captured (or
    /// `max_cycles` pass) and hands them over — the tcpdump capture step of
    /// the Appendix D latency experiment.
    pub fn capture(&mut self, n: usize, max_cycles: u64) -> Vec<Packet> {
        self.capture_want = n;
        self.captured.clear();
        for _ in 0..max_cycles {
            if self.captured.len() >= n {
                break;
            }
            self.tick();
        }
        self.capture_want = 0;
        std::mem::take(&mut self.captured)
    }
}

/// A packet with the generator's template shape (for assertions).
pub fn template_packet(rpu: u8, size: usize) -> Packet {
    PacketBuilder::new()
        .src_ip([10, 100, rpu, 1])
        .dst_ip([10, 200, 0, 1])
        .udp(30_000 + u16::from(rpu), 9)
        .pad_to(size)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarder::build_forwarding_system;

    fn drain(sys: &mut Rosebud) {
        for p in 0..sys.config().num_ports {
            let _ = sys.take_output(p);
        }
    }

    #[test]
    fn pktgen_saturates_the_wire_for_large_frames() {
        let mut sys = build_pktgen_system(16, 1024).unwrap();
        sys.run(30_000);
        drain(&mut sys); // discard the warm-up backlog
        let mut b2b_bytes = 0u64;
        let start = sys.now();
        let mut frames = 0u64;
        for _ in 0..50_000 {
            sys.tick();
            for p in 0..2 {
                for pkt in sys.take_output(p) {
                    frames += 1;
                    b2b_bytes += pkt.len();
                }
            }
        }
        let secs = (sys.now() - start) as f64 * 4e-9;
        let gbps = b2b_bytes as f64 * 8.0 / secs / 1e9;
        let line = rosebud_net::effective_line_rate_gbps(200.0, 1024);
        assert!(
            gbps > line * 0.97,
            "generator produced {gbps:.1} Gbps of 1024B frames (line {line:.1})"
        );
        let _ = frames;
    }

    #[test]
    fn pktgen_is_loop_limited_at_64_bytes() {
        // §6.1: generation caps at 250 Mpps (the 16-cycle loop), 88 % of
        // the 64-byte line rate.
        let mut sys = build_pktgen_system(16, 64).unwrap();
        sys.run(30_000);
        drain(&mut sys);
        let start = sys.now();
        let mut frames = 0u64;
        for _ in 0..50_000 {
            sys.tick();
            for p in 0..2 {
                frames += sys.take_output(p).len() as u64;
            }
        }
        let mpps = frames as f64 / ((sys.now() - start) as f64 * 4e-9) / 1e6;
        assert!(
            (235.0..260.0).contains(&mpps),
            "generator rate {mpps:.1} Mpps, expected ~250"
        );
    }

    #[test]
    fn back_to_back_testbed_reproduces_the_forwarding_result() {
        // The full two-FPGA experiment: tester generates 512 B frames, DUT
        // forwards them, tester receives them back at line rate.
        let tester = build_pktgen_system(16, 512).unwrap();
        let dut = build_forwarding_system(16).unwrap();
        let mut b2b = BackToBack::new(tester, dut);
        b2b.run(60_000);
        b2b.begin_window();
        b2b.run(100_000);
        let m = b2b.measure();
        let line = rosebud_net::effective_line_rate_gbps(200.0, 512);
        assert!(
            m.gbps > line * 0.95,
            "testbed measured {:.1} Gbps of 512B (line {line:.1})",
            m.gbps
        );
    }

    #[test]
    fn generated_frames_parse_as_the_template() {
        let mut sys = build_pktgen_system(4, 128).unwrap();
        sys.run(5_000);
        let out = sys.take_output(0);
        assert!(!out.is_empty());
        for pkt in out.iter().take(10) {
            let ip = pkt.ipv4().expect("generated frames are IPv4");
            assert_eq!(ip.dst, [10, 200, 0, 1]);
            assert_eq!(pkt.udp().unwrap().dst_port, 9);
        }
    }
}
