//! The CPU baseline of Fig. 8: Snort 3 + Hyperscan on a 32-core Xeon.
//!
//! Two pieces:
//!
//! * [`SnortModel`] — a calibrated analytic model of the paper's baseline
//!   measurement ("the packet rate is limited between 4.7 and 5.6 MPPS"
//!   across packet sizes, §7.1.3): per-packet software overhead dominates
//!   and per-byte scanning adds a mild size dependence. The paper's ramdisk
//!   control (60 → 70 Gbps at 2048 B) showed the NIC path was not the
//!   bottleneck, so the model charges all cost to the IDS itself.
//! * [`CpuMatcher`] — a *real* multi-pattern matcher (our Aho–Corasick) run
//!   on the host CPU, optionally across threads, to ground the shape: CPU
//!   matching is packet-rate-bound, not byte-rate-bound, for middlebox-size
//!   packets. The Criterion micro-bench in `rosebud-bench` measures it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rosebud_accel::RuleSet;
use rosebud_net::Trace;

/// Analytic model of the Snort+Hyperscan baseline.
///
/// # Examples
///
/// ```
/// use rosebud_apps::snort::SnortModel;
/// let snort = SnortModel::paper_baseline();
/// let m64 = snort.mpps(64);
/// let m2048 = snort.mpps(2048);
/// assert!(m64 > m2048);
/// assert!((4.0..6.0).contains(&m64));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SnortModel {
    /// Physical cores (the paper's Xeon 6130 has 32).
    pub cores: u32,
    /// Per-packet cost on one core, nanoseconds (parse, flow lookup,
    /// AF_PACKET hand-off, Hyperscan invocation overhead).
    pub per_packet_ns: f64,
    /// Per-payload-byte scanning cost on one core, nanoseconds.
    pub per_byte_ns: f64,
}

impl SnortModel {
    /// The configuration calibrated to the paper's measurement: 4.7–5.6
    /// MPPS between 64 B and 2048 B packets on 32 cores.
    pub fn paper_baseline() -> Self {
        Self {
            cores: 32,
            per_packet_ns: 5_680.0,
            per_byte_ns: 0.56,
        }
    }

    /// Sustained packet rate in MPPS for `size`-byte packets.
    pub fn mpps(&self, size: u64) -> f64 {
        let ns_per_packet_one_core = self.per_packet_ns + self.per_byte_ns * size as f64;
        self.cores as f64 / ns_per_packet_one_core * 1e3
    }

    /// Sustained effective throughput in Gbps for `size`-byte packets.
    pub fn gbps(&self, size: u64) -> f64 {
        self.mpps(size) * 1e6 * size as f64 * 8.0 / 1e9
    }
}

/// A real software IDS data path: multi-pattern scan of every packet
/// payload against a compiled rule set, parallelized across scoped worker
/// threads — the honest CPU comparator for the micro-benchmarks.
pub struct CpuMatcher {
    rules: Arc<RuleSet>,
}

impl CpuMatcher {
    /// Wraps a compiled rule set.
    pub fn new(rules: RuleSet) -> Self {
        Self {
            rules: Arc::new(rules),
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Scans every packet of `trace` on the calling thread; returns the
    /// number of (packet, rule) match events.
    pub fn scan_trace(&self, trace: &Trace) -> u64 {
        let mut hits = 0u64;
        for pkt in trace {
            if let (Some(payload), Ok(tcp)) = (pkt.payload(), pkt.tcp()) {
                hits += self
                    .rules
                    .matches(payload, tcp.src_port, tcp.dst_port)
                    .len() as u64;
            } else if let (Some(payload), Ok(udp)) = (pkt.payload(), pkt.udp()) {
                hits += self
                    .rules
                    .matches(payload, udp.src_port, udp.dst_port)
                    .len() as u64;
            }
        }
        hits
    }

    /// Scans `trace` across `threads` workers (static partition), returning
    /// total match events. Models the AF_PACKET fanout the paper enables.
    pub fn scan_trace_parallel(&self, trace: &Trace, threads: usize) -> u64 {
        assert!(threads > 0, "need at least one worker");
        let hits = AtomicU64::new(0);
        let packets = trace.packets();
        let chunk = packets.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in packets.chunks(chunk.max(1)) {
                let rules = Arc::clone(&self.rules);
                let hits = &hits;
                scope.spawn(move || {
                    let mut local = 0u64;
                    for pkt in part {
                        if let (Some(payload), Ok(tcp)) = (pkt.payload(), pkt.tcp()) {
                            local +=
                                rules.matches(payload, tcp.src_port, tcp.dst_port).len() as u64;
                        }
                    }
                    hits.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{attack_trace, compile, synthetic_rules};

    #[test]
    fn paper_baseline_bounds_match_figure_8b() {
        let snort = SnortModel::paper_baseline();
        // "the packet rate is limited between 4.7 and 5.6 MPPS".
        for size in [64u64, 128, 256, 512, 800, 1024, 1500, 2048] {
            let mpps = snort.mpps(size);
            assert!(
                (4.6..5.7).contains(&mpps),
                "size {size}: {mpps:.2} MPPS outside the paper's band"
            );
        }
        // Ramdisk control: ~60–70 Gbps at 2048 B.
        let gbps = snort.gbps(2048);
        assert!((55.0..80.0).contains(&gbps), "2048B: {gbps:.1} Gbps");
    }

    #[test]
    fn snort_is_far_below_rosebud_at_small_packets() {
        // Fig. 8b: Rosebud HW-reorder sustains ~33 MPPS; Snort ~5.
        let snort = SnortModel::paper_baseline();
        assert!(snort.mpps(64) < 8.0);
    }

    #[test]
    fn cpu_matcher_finds_every_attack() {
        let rules = synthetic_rules(64, 5);
        let trace = attack_trace(&rules, 512);
        let matcher = CpuMatcher::new(compile(rules));
        assert!(matcher.scan_trace(&trace) >= 64);
    }

    #[test]
    fn parallel_scan_agrees_with_serial() {
        let rules = synthetic_rules(64, 6);
        let trace = attack_trace(&rules, 1024);
        let matcher = CpuMatcher::new(compile(rules));
        let serial = matcher.scan_trace(&trace);
        for threads in [1, 2, 4] {
            assert_eq!(matcher.scan_trace_parallel(&trace, threads), serial);
        }
    }
}
