//! A Snort-lite rule language and synthetic rule-set generation.
//!
//! Pigasus compiles Snort rules' "fast patterns" into its string-matching
//! engines; the paper's test benches parse rule files with `idstools` and
//! craft matching attack packets (Appendix A.4, D). This module provides the
//! equivalent: a parser for the subset of Snort syntax the fast-pattern path
//! uses (`content`, ports, `sid`), a deterministic synthetic rule-set
//! generator, and attack-trace crafting from a rule set.

use rosebud_accel::{Rule, RuleSet};
use rosebud_kernel::SimRng;
use rosebud_net::{PacketBuilder, Trace};

/// Errors from [`parse_rules`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleParseError {}

/// Parses a Snort-lite rule file. Supported shape:
///
/// ```text
/// alert tcp any any -> any 80 (msg:"worm"; content:"evil payload"; sid:2001;)
/// ```
///
/// `content` accepts `|xx xx|` hex escapes. Lines starting with `#` and
/// blank lines are skipped. Only the fast-pattern-relevant parts (first
/// `content`, destination/source port when not `any`, `sid`) are kept —
/// exactly the information the Pigasus engines consume.
///
/// # Errors
///
/// Returns [`RuleParseError`] for rules without `content` or `sid`, or with
/// malformed hex escapes.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, RuleParseError> {
    let mut rules = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| RuleParseError {
            line: line_no,
            message,
        };
        let open = line
            .find('(')
            .ok_or_else(|| err("missing option block".into()))?;
        let close = line
            .rfind(')')
            .ok_or_else(|| err("unclosed option block".into()))?;
        let header: Vec<&str> = line[..open].split_whitespace().collect();
        // action proto src sport -> dst dport
        if header.len() < 7 {
            return Err(err(format!(
                "header needs 7 fields, found {}",
                header.len()
            )));
        }
        let src_port = header[3].parse::<u16>().ok();
        let dst_port = header[6].parse::<u16>().ok();

        let mut content: Option<Vec<u8>> = None;
        let mut sid: Option<u32> = None;
        for option in line[open + 1..close].split(';') {
            let option = option.trim();
            if let Some(value) = option.strip_prefix("content:") {
                if content.is_none() {
                    let value = value.trim().trim_matches('"');
                    content = Some(decode_content(value).map_err(err)?);
                }
            } else if let Some(value) = option.strip_prefix("sid:") {
                sid = value.trim().parse::<u32>().ok();
            }
        }
        let pattern = content.ok_or_else(|| err("rule has no content option".into()))?;
        let sid = sid.ok_or_else(|| err("rule has no sid".into()))?;
        if pattern.is_empty() {
            return Err(err("empty content".into()));
        }
        let mut rule = Rule::new(sid, &pattern);
        if let Some(p) = src_port {
            rule = rule.with_src_port(p);
        }
        if let Some(p) = dst_port {
            rule = rule.with_dst_port(p);
        }
        rules.push(rule);
    }
    Ok(rules)
}

/// Decodes a Snort content string with `|xx xx|` hex sections.
fn decode_content(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut rest = s;
    let mut in_hex = false;
    while !rest.is_empty() {
        match rest.find('|') {
            Some(at) => {
                let (chunk, tail) = rest.split_at(at);
                if in_hex {
                    for tok in chunk.split_whitespace() {
                        let byte = u8::from_str_radix(tok, 16)
                            .map_err(|_| format!("bad hex byte `{tok}`"))?;
                        out.push(byte);
                    }
                } else {
                    out.extend_from_slice(chunk.as_bytes());
                }
                in_hex = !in_hex;
                rest = &tail[1..];
            }
            None => {
                if in_hex {
                    return Err("unterminated hex section".into());
                }
                out.extend_from_slice(rest.as_bytes());
                rest = "";
            }
        }
    }
    Ok(out)
}

/// Generates `n` deterministic synthetic rules with distinct patterns of
/// 6–18 bytes, ~40 % carrying a destination-port constraint — a stand-in
/// for the registered Snort ruleset Pigasus ships with.
pub fn synthetic_rules(n: usize, seed: u64) -> Vec<Rule> {
    let mut rng = SimRng::seed_from(seed);
    let mut rules = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while rules.len() < n {
        let len = 6 + rng.below(13) as usize;
        // Patterns drawn from printable bytes so they read like real
        // signatures and never collide with zero padding.
        let pattern: Vec<u8> = (0..len).map(|_| 33 + rng.below(94) as u8).collect();
        if !seen.insert(pattern.clone()) {
            continue;
        }
        let sid = 2_000_000 + rules.len() as u32;
        let mut rule = Rule::new(sid, &pattern);
        if rng.chance(0.4) {
            rule = rule.with_dst_port([80u16, 443, 25, 21, 8080][rng.below(5) as usize]);
        }
        rules.push(rule);
    }
    rules
}

/// Compiles rules into a [`RuleSet`] (string automaton + port matcher).
pub fn compile(rules: Vec<Rule>) -> RuleSet {
    RuleSet::compile(rules)
}

/// Crafts one attack packet per rule: a TCP packet to the rule's port (or
/// 80) whose payload embeds the rule's pattern — the paper's
/// `attack_pcap` generation (Appendix D).
pub fn attack_trace(rules: &[Rule], size: usize) -> Trace {
    let mut trace = Trace::new();
    for (i, rule) in rules.iter().enumerate() {
        let dst_port = rule.dst_port.unwrap_or(80);
        let src_port = rule.src_port.unwrap_or(40_000 + (i % 20_000) as u16);
        let mut payload = vec![b'.'; size.saturating_sub(54).max(rule.pattern.len())];
        let at = (i * 13) % (payload.len() - rule.pattern.len() + 1);
        payload[at..at + rule.pattern.len()].copy_from_slice(&rule.pattern);
        trace.push(
            PacketBuilder::new()
                .src_ip([10, 9, (i >> 8) as u8, i as u8])
                .dst_ip([172, 16, 1, 1])
                .tcp(src_port, dst_port)
                .payload(&payload)
                .port((i % 2) as u8)
                .build_with(i as u64, 0),
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_rule() {
        let rules =
            parse_rules(r#"alert tcp any any -> any 80 (msg:"worm"; content:"evil"; sid:2001;)"#)
                .unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].id, 2001);
        assert_eq!(rules[0].pattern, b"evil");
        assert_eq!(rules[0].dst_port, Some(80));
        assert_eq!(rules[0].src_port, None);
    }

    #[test]
    fn parses_hex_content() {
        let rules =
            parse_rules(r#"alert udp any 53 -> any any (content:"A|0d 0a|B"; sid:7;)"#).unwrap();
        assert_eq!(rules[0].pattern, b"A\r\nB");
        assert_eq!(rules[0].src_port, Some(53));
        assert_eq!(rules[0].dst_port, None);
    }

    #[test]
    fn rejects_rule_without_sid() {
        let e = parse_rules(r#"alert tcp any any -> any any (content:"x";)"#).unwrap_err();
        assert!(e.message.contains("sid"));
    }

    #[test]
    fn rejects_bad_hex() {
        let e =
            parse_rules(r#"alert tcp any any -> any any (content:"|zz|"; sid:1;)"#).unwrap_err();
        assert!(e.message.contains("hex"));
    }

    #[test]
    fn synthetic_rules_compile_and_match_their_attack_trace() {
        let rules = synthetic_rules(100, 11);
        let set = compile(rules.clone());
        let trace = attack_trace(&rules, 512);
        let mut matched = 0;
        for (pkt, rule) in trace.iter().zip(&rules) {
            let tcp = pkt.tcp().unwrap();
            let ids = set.matches(pkt.payload().unwrap(), tcp.src_port, tcp.dst_port);
            assert!(
                ids.contains(&rule.id),
                "rule {} not found in its own attack packet",
                rule.id
            );
            matched += 1;
        }
        assert_eq!(matched, 100);
    }

    #[test]
    fn clean_payloads_do_not_match_synthetic_rules() {
        let set = compile(synthetic_rules(200, 12));
        // Zero padding can never contain printable-byte patterns.
        let clean = vec![0u8; 1024];
        assert!(set.matches(&clean, 1000, 80).is_empty());
    }
}
