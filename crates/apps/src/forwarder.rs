//! The `basic_fw` packet forwarder of the framework evaluation (§6.1), and
//! the two-step loopback forwarder used to measure inter-RPU messaging
//! throughput (§6.3).

use rosebud_core::{Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud_riscv::{assemble, Image};

/// Assembly source of the forwarder: poll for a descriptor, copy it into a
/// context slot, flip the egress port bit, and send. The hot loop is exactly
/// 16 cycles per packet — "the minimum time for our packet forwarder to read
/// a descriptor and send it back is 16 cycles" (§6.1) — which is what caps
/// 16 RPUs at 250 Mpps and 8 RPUs at 125 Mpps.
pub const FORWARDER_ASM: &str = "
    .equ IO, 0x02000000
        li t0, IO
        li t1, 0x00800000        # descriptor context array in dmem
        li t2, 0x01000000        # XOR mask for the port field (bit 24)
    poll:
        lw a0, 0x00(t0)          # RECV_READY
        beqz a0, poll
        lw a1, 0x04(t0)          # RECV_DESC_LO
        lw a2, 0x08(t0)          # RECV_DESC_DATA
        sw a1, 0(t1)             # copy descriptor into context
        sw a2, 4(t1)
        sw zero, 0x0c(t0)        # RECV_RELEASE
        xor a1, a1, t2           # swap egress port 0 <-> 1
        sw a1, 0x10(t0)          # SEND_DESC_LO
        sw a2, 0x14(t0)          # SEND_DESC_DATA (commit)
        j poll
";

/// The single-port variant for 100 Gbps runs — "For 100 Gbps results, you
/// can update the C code to use single port" (Appendix D): the port byte is
/// cleared so every packet returns on port 0.
pub const FORWARDER_SINGLE_PORT_ASM: &str = "
    .equ IO, 0x02000000
        li t0, IO
        li t1, 0x00800000
    poll:
        lw a0, 0x00(t0)
        beqz a0, poll
        lw a1, 0x04(t0)
        lw a2, 0x08(t0)
        sw a1, 0(t1)
        sw a2, 4(t1)
        sw zero, 0x0c(t0)
        slli a1, a1, 8           # clear the port byte
        srli a1, a1, 8
        sw a1, 0x10(t0)
        sw a2, 0x14(t0)
        j poll
";

/// Assembles the forwarder image.
///
/// # Panics
///
/// Panics only if the embedded source fails to assemble (a build bug).
pub fn forwarder_image() -> Image {
    assemble(FORWARDER_ASM).expect("embedded forwarder must assemble")
}

/// Source of the supervised forwarder: the same hot loop as
/// [`FORWARDER_ASM`], plus a one-shot watchdog pet at the top of every poll
/// iteration (§3.4: "software on the RISC-V can detect the hang using
/// internal timer interrupt"). Healthy firmware keeps pushing the deadline
/// forward, so the watchdog never expires; wedged firmware stops petting and
/// the expiration becomes a host-visible counter the supervisor polls.
///
/// `interval` is the watchdog deadline in cycles. It must comfortably
/// exceed one poll iteration (a few cycles) but stay small enough that
/// detection is prompt; 64 is a reasonable default.
pub fn watchdog_forwarder_asm(interval: u32) -> String {
    format!(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t1, 0x00800000        # descriptor context array in dmem
            li t2, 0x01000000        # XOR mask for the port field (bit 24)
            li t5, {interval}        # watchdog deadline, re-armed per poll
        poll:
            sw t5, 0x40(t0)          # TIMER_CMP: pet the one-shot watchdog
            lw a0, 0x00(t0)          # RECV_READY
            beqz a0, poll
            lw a1, 0x04(t0)          # RECV_DESC_LO
            lw a2, 0x08(t0)          # RECV_DESC_DATA
            sw a1, 0(t1)             # copy descriptor into context
            sw a2, 4(t1)
            sw zero, 0x0c(t0)        # RECV_RELEASE
            xor a1, a1, t2           # swap egress port 0 <-> 1
            sw a1, 0x10(t0)          # SEND_DESC_LO
            sw a2, 0x14(t0)          # SEND_DESC_DATA (commit)
            j poll
        "
    )
}

/// Builds the forwarding system with the watchdog-petting firmware of
/// [`watchdog_forwarder_asm`] on every core — the configuration the
/// self-healing supervisor expects, since hang detection rides on the
/// watchdog expiration counter.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_watchdog_forwarding_system(rpus: usize, interval: u32) -> Result<Rosebud, String> {
    let image = assemble(&watchdog_forwarder_asm(interval))
        .expect("embedded watchdog forwarder must assemble");
    Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
}

/// Source of the duty-cycled forwarder: instead of busy-polling
/// `RECV_READY`, the core arms the one-shot timer as a wake-up alarm and
/// parks in `wfi`. Frames DMA'd into packet memory while the core sleeps
/// accumulate in the descriptor queue; each timer fire wakes the core, which
/// drains every queued descriptor in a burst, re-arms, and parks again.
///
/// Re-arming `TIMER_CMP` acknowledges the pending timer interrupt
/// (`mtimecmp`-style), so the next `wfi` genuinely parks. `mstatus.MIE`
/// stays clear: a pending-and-enabled interrupt resumes `wfi` without
/// trapping, which keeps the firmware handler-free.
///
/// The timer here is an alarm, not a watchdog — every expiry increments the
/// host-visible `watchdog_fires` counter by design, so this firmware must
/// not be paired with a hang-detecting supervisor.
///
/// `interval` is the park duration in cycles; it bounds added per-packet
/// latency and sets the duty cycle. Larger intervals mean longer provably
/// inert stretches, which the parallel kernel's quiescent-lane elision
/// skips wholesale.
pub fn duty_cycle_forwarder_asm(interval: u32) -> String {
    format!(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t1, 0x00800000        # descriptor context array in dmem
            li t2, 0x01000000        # XOR mask for the port field (bit 24)
            li t5, {interval}        # park duration per duty cycle
            li t6, 2                 # enable the timer interrupt line (bit 1)
            csrw mie, t6
        park:
            sw t5, 0x40(t0)          # TIMER_CMP: arm the alarm + ack last fire
            wfi                      # park until the alarm fires
        drain:
            lw a0, 0x00(t0)          # RECV_READY
            beqz a0, park            # queue empty: back to sleep
            lw a1, 0x04(t0)          # RECV_DESC_LO
            lw a2, 0x08(t0)          # RECV_DESC_DATA
            sw a1, 0(t1)             # copy descriptor into context
            sw a2, 4(t1)
            sw zero, 0x0c(t0)        # RECV_RELEASE
            xor a1, a1, t2           # swap egress port 0 <-> 1
            sw a1, 0x10(t0)          # SEND_DESC_LO
            sw a2, 0x14(t0)          # SEND_DESC_DATA (commit)
            j drain
        "
    )
}

/// Builds a forwarding system running the duty-cycled firmware of
/// [`duty_cycle_forwarder_asm`] on every core. The functional behaviour
/// matches [`build_forwarding_system`] (every packet forwarded with its
/// port flipped) with bounded extra latency; the simulation-speed benefit
/// is that parked stretches are provably inert, which the parallel kernel
/// elides.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_duty_cycle_forwarding_system(rpus: usize, interval: u32) -> Result<Rosebud, String> {
    let image = assemble(&duty_cycle_forwarder_asm(interval))
        .expect("embedded duty-cycled forwarder must assemble");
    Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
}

/// Builds the §6.1 forwarding system: `rpus` RPUs, round-robin LB, the
/// 16-cycle forwarder on every core.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_forwarding_system(rpus: usize) -> Result<Rosebud, String> {
    build_forwarding_system_with(RosebudConfig::with_rpus(rpus))
}

/// Builds the single-port 100 Gbps forwarding system of Appendix D.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_forwarding_system_single_port(rpus: usize) -> Result<Rosebud, String> {
    let image = assemble(FORWARDER_SINGLE_PORT_ASM).expect("embedded forwarder must assemble");
    let mut cfg = RosebudConfig::with_rpus(rpus);
    cfg.num_ports = 1;
    Rosebud::builder(cfg)
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
}

/// Same as [`build_forwarding_system`] with an explicit config.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_forwarding_system_with(cfg: RosebudConfig) -> Result<Rosebud, String> {
    let image = forwarder_image();
    Rosebud::builder(cfg)
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
}

/// Source for the two-step forwarding firmware of §6.3: the receiving half
/// of the RPUs hand each packet to a partner RPU over the loopback port;
/// the partner returns it to the physical link.
///
/// `partner_port` is the descriptor port targeting the partner
/// (`LOOPBACK_BASE + partner`), or the physical egress policy for the second
/// hop.
fn two_step_asm(first_hop: bool, partner: usize) -> String {
    if first_hop {
        // Receivers: rewrite the port field to LOOPBACK_BASE + partner.
        format!(
            "
            .equ IO, 0x02000000
                li t0, IO
                li t3, {dest}            # loopback destination port value
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                lw a1, 0x04(t0)
                lw a2, 0x08(t0)
                sw zero, 0x0c(t0)
                # clear the port byte, then or in the loopback destination
                slli a1, a1, 8
                srli a1, a1, 8
                slli t4, t3, 24
                or a1, a1, t4
                sw a1, 0x10(t0)
                sw a2, 0x14(t0)
                j poll
            ",
            dest = rosebud_core::port::LOOPBACK_BASE as usize + partner,
        )
    } else {
        // Partners: send to physical port (rpu parity picks 0 or 1).
        format!(
            "
            .equ IO, 0x02000000
                li t0, IO
                li t3, {egress}
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                lw a1, 0x04(t0)
                lw a2, 0x08(t0)
                sw zero, 0x0c(t0)
                slli a1, a1, 8
                srli a1, a1, 8
                slli t4, t3, 24
                or a1, a1, t4
                sw a1, 0x10(t0)
                sw a2, 0x14(t0)
                j poll
            ",
            egress = partner % 2,
        )
    }
}

/// Builds the §6.3 two-step system: RPUs `0..n/2` receive from the wire and
/// loop each packet to partner `i + n/2`, which returns it to a physical
/// port. Only the receiving half is enabled at the LB.
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
///
/// # Panics
///
/// Panics if `rpus` is not even and at least 2.
pub fn build_two_step_system(rpus: usize) -> Result<Rosebud, String> {
    assert!(
        rpus >= 2 && rpus.is_multiple_of(2),
        "two-step needs an even RPU count"
    );
    let half = rpus / 2;
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |r| {
            let source = if r < half {
                two_step_asm(true, r + half)
            } else {
                two_step_asm(false, r)
            };
            RpuProgram::Riscv(assemble(&source).expect("two-step firmware must assemble"))
        })
        .build()?;
    // "we assigned half of the RPUs to be recipients of the incoming
    // traffic" — disable the partner half at the LB.
    let mask = (1u64 << half) - 1;
    sys.lb_host_write(rosebud_core::lb_regs::ENABLE_LO, mask as u32);
    sys.lb_host_write(rosebud_core::lb_regs::ENABLE_HI, (mask >> 32) as u32);
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_core::Harness;
    use rosebud_net::FixedSizeGen;

    #[test]
    fn forwarder_image_assembles_small() {
        let image = forwarder_image();
        assert!(image.words().len() < 32, "hot loop should stay tiny");
    }

    #[test]
    fn forwarding_system_swaps_ports() {
        let sys = build_forwarding_system(4).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(128, 2)), 5.0).keep_output(true);
        h.run(20_000);
        assert!(h.received() > 10);
        for pkt in h.collected() {
            // Generator alternates ports; the forwarder flips them, so both
            // ports appear in output but never unchanged id/port pairs.
            assert!(pkt.port < 2);
        }
    }

    #[test]
    fn watchdog_forwarder_pets_and_never_fires_when_healthy() {
        let sys = build_watchdog_forwarding_system(4, 64).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(128, 2)), 5.0);
        h.run(20_000);
        assert!(h.received() > 10, "watchdog forwarder must still forward");
        for r in 0..4 {
            assert_eq!(
                h.sys.rpus()[r].watchdog_fires(),
                0,
                "healthy firmware must keep petting the watchdog (RPU {r})"
            );
        }
    }

    #[test]
    fn duty_cycle_forwarder_forwards_between_naps() {
        let sys = build_duty_cycle_forwarding_system(4, 200).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(128, 2)), 5.0).keep_output(true);
        h.run(40_000);
        assert!(
            h.received() > 10,
            "duty-cycled forwarder delivered {} packets",
            h.received()
        );
        for pkt in h.collected() {
            assert!(pkt.port < 2);
        }
        // The alarm is supposed to fire every interval — parked cores wake
        // on it, so expiries must have accumulated.
        let fires: u64 = (0..4).map(|r| h.sys.rpus()[r].watchdog_fires()).sum();
        assert!(fires > 10, "alarm should fire repeatedly, saw {fires}");
    }

    #[test]
    fn two_step_system_delivers_through_loopback() {
        let sys = build_two_step_system(8).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 10.0);
        h.run(40_000);
        assert!(
            h.received() > 10,
            "two-step path delivered {} packets",
            h.received()
        );
        // The loopback wire must actually have carried them.
        assert!(h.sys.drop_count() < h.received() / 10);
    }
}
