//! The Rosebud case studies (paper §6–§7) plus the Snort CPU baseline.
//!
//! * [`forwarder`] — the `basic_fw` firmware of the framework evaluation
//!   (§6.1): the 16-cycle descriptor-flip loop, in our RV32 assembly, plus
//!   the two-step loopback forwarder of §6.3.
//! * [`firewall`] — the blacklist firewall of §7.2: assembled firmware
//!   driving the 2-cycle IP-prefix accelerator, blacklist parsing, and the
//!   1050-attack-packet trace generator.
//! * [`pigasus`] — the Pigasus IDS port of §7.1: native firmware for the
//!   hardware-reorder and software-reorder configurations, the per-RPU flow
//!   table, and attack-trace generation from a rule set.
//! * [`snort`] — the CPU baseline of Fig. 8: a calibrated multicore model of
//!   Snort+Hyperscan, plus a real single-threaded multi-pattern matcher for
//!   grounding the per-byte costs.
//! * [`rules`] — a Snort-lite rule parser and synthetic rule-set generator.
//! * [`messaging`] — broadcast-messaging firmware for the §6.3 latency
//!   experiments.
//! * [`host_dma`] — a forwarder that mirrors packet headers into host DRAM
//!   through the DMA manager (§4.2), written to pass the protocol/taint
//!   analyzer under `LoadPolicy::Deny`.
//! * [`pigasus_asm`] — the HW-reorder IPS firmware in actual RV32 assembly
//!   (Appendix B hand-lowered), running on the instruction-set simulator.
//! * [`pktgen`] — the tester FPGA: `basic_pkt_gen` firmware plus the
//!   [`BackToBack`](pktgen::BackToBack) two-FPGA testbed of §6.
//!
//! # Examples
//!
//! ```
//! use rosebud_apps::firewall;
//!
//! // Build the firewall system of §7.2 (4 RPUs for a quick check).
//! let blacklist = firewall::synthetic_blacklist(64, 7);
//! let sys = firewall::build_firewall_system(4, &blacklist).unwrap();
//! assert_eq!(sys.config().num_rpus, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod firewall;
pub mod forwarder;
pub mod host_dma;
pub mod messaging;
pub mod pigasus;
pub mod pigasus_asm;
pub mod pktgen;
pub mod rules;
pub mod snort;
