//! The Pigasus hardware-reorder firmware in actual RV32 assembly — the
//! Appendix B C code hand-lowered for the instruction-set simulator.
//!
//! The native-firmware version in [`crate::pigasus`] charges the paper's
//! measured cycle costs; this one *earns* them instruction by instruction on
//! the VexRiscv model: parse the header copy, feed the matcher over MMIO,
//! drain the result FIFO, append rule IDs to matched packets, route safe
//! traffic out the other port and matches to the host. Use it when you want
//! the §7.1 case study with zero modelled software.
//!
//! Calibration note: this hand-scheduled loop takes ~32 cycles per safe
//! packet — roughly half the 61 the paper measured from riscv-gcc output
//! over its richer `slot_context` bookkeeping (the paper itself reports a
//! 30 % packet-rate gain just from struct-layout and compiler changes,
//! §7.1.4). The calibrated native firmware in [`crate::pigasus`] carries
//! the paper's measured numbers; this module demonstrates the mechanism
//! end to end on the instruction-set simulator.

use rosebud_accel::{PigasusMatcher, Rule, RuleSet};
use rosebud_core::{Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud_riscv::{assemble, Image};

/// The assembled HW-reorder IPS firmware (Appendix B).
///
/// Register conventions: `t0` = interconnect, `t1` = header slots, `t6` =
/// accelerator window, `s2` = per-slot descriptor context table in data
/// memory, matching the C code's `struct slot_context context[...]`.
pub const PIGASUS_HW_ASM: &str = "
    .equ IO,   0x02000000
    .equ HDR,  0x00804000        # header slots: DMEM_BASE + DMEM_SIZE/2
    .equ ACC,  0x03000000        # IO_EXT_BASE
    .equ CTX,  0x00800100        # slot_context array (8 B per slot)
        li t0, IO
        li t1, HDR
        li t6, ACC
        li t5, 0x0008            # EtherType 0x0800 as loaded little-endian
        li s2, CTX
        li s3, 0x01FFFFFF        # ACC_PIG_STATE_H for TCP
        li s4, 0x00FFFFFF        # PMEM offset mask (data addr -> accel addr)
        li s5, 0x01000000        # port XOR mask (egress flip)
        li s6, 0x02000000        # port = HOST in the descriptor low word
        li s7, -4                # alignment mask for rule-id append

    poll:
        lw a0, 0x00(t0)          # in_pkt_ready()
        beqz a0, check_match
        # ---- slot_rx_packet ----
        lw a1, 0x04(t0)          # RECV_DESC_LO
        lw a2, 0x08(t0)          # RECV_DESC_DATA
        sw zero, 0x0c(t0)        # RECV_DESC_RELEASE
        srli a3, a1, 16
        andi a3, a3, 0xff        # slot tag
        slli a4, a3, 7
        add a4, a4, t1           # header copy pointer
        slli a5, a3, 3
        add a5, a5, s2           # context entry
        sw a1, 0(a5)             # copy descriptor into context
        sw a2, 4(a5)
        lhu a6, 12(a4)           # eth_type
        bne a6, t5, drop
        lbu a6, 23(a4)           # IPv4 protocol
        li a7, 6
        beq a6, a7, is_tcp
        li a7, 17
        beq a6, a7, is_udp
    drop:
        srli a1, a1, 16          # desc.len = 0: drop
        slli a1, a1, 16
        sw a1, 0x10(t0)
        sw a2, 0x14(t0)          # pkt_send
        j poll

    is_tcp:
        # payload at 54; STATE_H = 0x01FFFFFF
        and a6, a2, s4           # accel-side packet-memory address
        addi a6, a6, 54
        sw a6, 0x08(t6)          # ACC_DMA_ADDR
        slli a7, a1, 16
        srli a7, a7, 16          # len
        addi a7, a7, -54
        sw a7, 0x04(t6)          # ACC_DMA_LEN
        lw a6, 34(a4)            # both ports, raw (the C does exactly this)
        sw a6, 0x20(t6)          # ACC_PIG_PORTS (raw form)
        sw s3, 0x14(t6)          # ACC_PIG_STATE_H
        sw a3, 0x18(t6)          # ACC_PIG_SLOT
        li a7, 1
        sw a7, 0x00(t6)          # ACC_PIG_CTRL = 1: kick
        j poll

    is_udp:
        and a6, a2, s4
        addi a6, a6, 42          # UDP payload offset
        sw a6, 0x08(t6)
        slli a7, a1, 16
        srli a7, a7, 16
        addi a7, a7, -42
        sw a7, 0x04(t6)
        lw a6, 34(a4)
        sw a6, 0x20(t6)
        sw zero, 0x14(t6)        # STATE_H = 0 for UDP
        sw a3, 0x18(t6)
        li a7, 1
        sw a7, 0x00(t6)
        j poll

    check_match:
        # ---- slot_match ----
        lbu a0, 0x00(t6)         # ACC_PIG_MATCH
        beqz a0, poll
        lw a1, 0x1c(t6)          # ACC_PIG_RULE_ID
        lw a3, 0x18(t6)          # ACC_PIG_SLOT (head entry's slot)
        li a7, 2
        sw a7, 0x00(t6)          # release the entry
        slli a5, a3, 3
        add a5, a5, s2
        lw t2, 0(a5)             # context desc lo
        lw a2, 4(a5)             # context data addr
        beqz a1, eop
        # match: append the rule id to the packet, mark for the host
        slli a6, t2, 16
        srli a6, a6, 16          # current len
        add a6, a6, a2           # end address
        addi a6, a6, 3
        and a6, a6, s7           # align up
        sw a1, 0(a6)             # *(unsigned int *)eop = rule_id
        sub a6, a6, a2
        addi a6, a6, 4           # new length
        # rebuild desc lo: len = a6, tag = a3, port = HOST
        slli t2, a3, 16
        or t2, t2, a6
        or t2, t2, s6            # port = 2 (host)
        sw t2, 0(a5)             # save back to context
        j check_match            # continue draining FIFO
    eop:
        # route: matched contexts already carry port=HOST; safe traffic
        # flips the ingress port
        srli a6, t2, 24
        li a7, 2
        beq a6, a7, send_it
        xor t2, t2, s5
    send_it:
        sw t2, 0x10(t0)
        sw a2, 0x14(t0)          # pkt_send(&slot->desc)
        j poll
";

/// Assembles the firmware.
///
/// # Panics
///
/// Panics only if the embedded source fails to assemble (a build bug).
pub fn pigasus_hw_image() -> Image {
    assemble(PIGASUS_HW_ASM).expect("embedded Pigasus firmware must assemble")
}

/// Builds the §7.1 HW-reorder IPS with the *assembled* firmware on every
/// RPU — the all-the-way-down configuration (ISS + MMIO + accelerator
/// model, no modelled software at all).
///
/// # Errors
///
/// Propagates configuration-validation errors from the builder.
pub fn build_pigasus_riscv_system(
    rules: Vec<Rule>,
    rpus: usize,
    engines: u32,
) -> Result<Rosebud, String> {
    let mut cfg = RosebudConfig::with_rpus(rpus);
    cfg.slots_per_rpu = 32;
    let compiled = RuleSet::compile(rules);
    let image = pigasus_hw_image();
    Rosebud::builder(cfg)
        .load_balancer(Box::new(RoundRobinLb::new()))
        .accelerator(move |_| Box::new(PigasusMatcher::new(compiled.clone(), engines)))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{attack_trace, synthetic_rules};
    use rosebud_core::{port, RpuTestbench};
    use rosebud_net::PacketBuilder;

    fn bench(rules: Vec<Rule>) -> RpuTestbench {
        let mut cfg = RosebudConfig::with_rpus(8);
        cfg.slots_per_rpu = 32;
        let mut tb = RpuTestbench::new(cfg);
        tb.set_accelerator(Box::new(PigasusMatcher::new(RuleSet::compile(rules), 16)));
        tb.load_riscv(&pigasus_hw_image());
        tb.step(200); // boot
        tb
    }

    #[test]
    fn assembled_firmware_forwards_safe_tcp() {
        let mut tb = bench(synthetic_rules(32, 17));
        let pkt = PacketBuilder::new()
            .tcp(4000, 443)
            .pad_to(256)
            .port(0)
            .build();
        let report = tb.process_one(&pkt, 3000);
        assert_eq!(report.outputs.len(), 1);
        assert_eq!(report.outputs[0].desc.port, 1, "safe TCP flips ports");
        assert_eq!(report.outputs[0].bytes.len(), 256);
    }

    #[test]
    fn assembled_firmware_flags_attacks_with_rule_id() {
        let rules = synthetic_rules(32, 17);
        let rule = rules[3].clone();
        let mut tb = bench(rules);
        let mut payload = vec![b'-'; 300];
        payload[40..40 + rule.pattern.len()].copy_from_slice(&rule.pattern);
        let pkt = PacketBuilder::new()
            .tcp(5000, rule.dst_port.unwrap_or(80))
            .payload(&payload)
            .build();
        let report = tb.process_one(&pkt, 5000);
        assert_eq!(report.outputs.len(), 1);
        let out = &report.outputs[0];
        assert_eq!(out.desc.port, port::HOST, "matched packet goes to host");
        assert!(out.bytes.len() > 354, "rule id appended");
        let sid = u32::from_le_bytes(out.bytes[out.bytes.len() - 4..].try_into().unwrap());
        assert_eq!(sid, rule.id);
    }

    #[test]
    fn assembled_firmware_drops_non_ip() {
        let mut tb = bench(synthetic_rules(8, 3));
        let pkt = PacketBuilder::new()
            .ethertype(rosebud_net::EtherType::ARP)
            .pad_to(64)
            .build();
        let report = tb.process_one(&pkt, 2000);
        assert_eq!(report.outputs[0].desc.len, 0);
    }

    #[test]
    fn assembled_firmware_cycles_near_the_papers_61() {
        let mut tb = bench(synthetic_rules(32, 17));
        let pkt = PacketBuilder::new().tcp(4000, 443).pad_to(256).build();
        for _ in 0..10 {
            tb.deliver(&pkt).unwrap();
        }
        tb.step(3_000);
        let sends: Vec<u64> = tb.outputs().iter().map(|o| o.sent_at).collect();
        assert_eq!(sends.len(), 10);
        let per_packet = (sends[9] - sends[1]) as f64 / 8.0;
        // The hand-scheduled loop comes out around half the paper's
        // 61 cycles — their number is riscv-gcc output over a richer
        // slot-context structure (and the paper itself found 30 % headroom
        // just from struct-layout changes, §7.1.4). The calibrated native
        // firmware carries the measured 61; this test pins the assembled
        // loop's cost so regressions are visible.
        assert!(
            (25.0..61.0).contains(&per_packet),
            "assembled IPS loop: {per_packet:.1} cycles/packet (expected ~32, paper's C: 61)"
        );
    }

    #[test]
    fn full_system_with_assembled_firmware_matches_ground_truth() {
        let rules = synthetic_rules(16, 41);
        let mut sys = build_pigasus_riscv_system(rules.clone(), 4, 16).unwrap();
        let attacks = attack_trace(&rules, 400);
        for pkt in &attacks {
            let mut p = pkt.clone();
            loop {
                match sys.inject(p) {
                    Ok(()) => break,
                    Err(back) => {
                        p = back;
                        sys.tick();
                    }
                }
            }
            for _ in 0..8 {
                sys.tick();
            }
        }
        sys.run(60_000);
        let host = sys.take_host_packets();
        assert_eq!(host.len(), attacks.len(), "every attack flagged to host");
        let escaped: usize = (0..2).map(|p| sys.take_output(p).len()).sum();
        assert_eq!(escaped, 0, "no attack escaped on a physical port");
    }
}
