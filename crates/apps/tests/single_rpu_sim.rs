//! Single-RPU simulations reproducing the paper's per-packet cycle counts
//! (§7.1.4): "we observed that it takes 61 cycles for safe TCP packets,
//! 59 cycles for safe UDP packets, and 82 cycles for attack traffic" — the
//! numbers the Fig. 9 average (60.2) is built from. Also the firewall
//! firmware's per-packet cost backing the §7.2 crossover at 256 B.

use rosebud_accel::{FirewallMatcher, PigasusMatcher, RuleSet};
use rosebud_apps::firewall::{firewall_image, synthetic_blacklist};
use rosebud_apps::pigasus::{PigasusFirmware, ReorderMode};
use rosebud_apps::rules::synthetic_rules;
use rosebud_core::{RosebudConfig, RpuTestbench};
use rosebud_net::PacketBuilder;

fn pigasus_bench() -> RpuTestbench {
    let mut cfg = RosebudConfig::with_rpus(8);
    cfg.slots_per_rpu = 32;
    let mut tb = RpuTestbench::new(cfg);
    let rules = synthetic_rules(64, 17);
    tb.set_accelerator(Box::new(PigasusMatcher::new(RuleSet::compile(rules), 16)));
    tb.load_native(Box::new(PigasusFirmware::new(ReorderMode::Hardware, 32)));
    tb
}

/// Steady-state cycles per packet: deliver a back-to-back burst and
/// measure the inter-send spacing — the way the paper's single-RPU
/// simulation reports "61 cycles for safe TCP packets" (§7.1.4).
fn steady_state_cycles(tb: &mut RpuTestbench, pkt: &rosebud_net::Packet) -> f64 {
    for _ in 0..10 {
        tb.deliver(pkt).unwrap();
    }
    tb.step(2_000);
    let sends: Vec<u64> = tb.outputs().iter().map(|o| o.sent_at).collect();
    assert_eq!(sends.len(), 10, "burst did not fully drain");
    // Skip the first gap (pipeline fill); average the rest.
    (sends[9] - sends[1]) as f64 / 8.0
}

#[test]
fn safe_tcp_packet_takes_61_cycles() {
    let mut tb = pigasus_bench();
    let pkt = PacketBuilder::new().tcp(4000, 80).pad_to(512).build();
    let cycles = steady_state_cycles(&mut tb, &pkt);
    assert!(
        (59.0..=63.0).contains(&cycles),
        "safe TCP: {cycles:.1} cycles/packet, paper: 61"
    );
    assert!(tb.outputs().iter().all(|o| o.desc.port == 1));
}

#[test]
fn safe_udp_packet_takes_59_cycles() {
    let mut tb = pigasus_bench();
    let pkt = PacketBuilder::new().udp(4000, 53).pad_to(512).build();
    let udp_cycles = steady_state_cycles(&mut tb, &pkt);
    assert!(
        (57.0..=61.0).contains(&udp_cycles),
        "safe UDP: {udp_cycles:.1} cycles/packet, paper: 59"
    );
    let mut tb = pigasus_bench();
    let tcp = PacketBuilder::new().tcp(1, 2).pad_to(512).build();
    let tcp_cycles = steady_state_cycles(&mut tb, &tcp);
    assert!(
        tcp_cycles > udp_cycles,
        "TCP ({tcp_cycles:.1}) must cost more than UDP ({udp_cycles:.1})"
    );
}

#[test]
fn attack_packet_takes_82_cycles_and_reaches_host() {
    let rules = synthetic_rules(64, 17);
    let mut cfg = RosebudConfig::with_rpus(8);
    cfg.slots_per_rpu = 32;
    let mut tb = RpuTestbench::new(cfg);
    tb.set_accelerator(Box::new(PigasusMatcher::new(
        RuleSet::compile(rules.clone()),
        16,
    )));
    tb.load_native(Box::new(PigasusFirmware::new(ReorderMode::Hardware, 32)));

    let rule = &rules[0];
    let mut payload = vec![b'.'; 400];
    payload[100..100 + rule.pattern.len()].copy_from_slice(&rule.pattern);
    let dst = rule.dst_port.unwrap_or(80);
    let pkt = PacketBuilder::new()
        .tcp(4000, dst)
        .payload(&payload)
        .build();
    let cycles = steady_state_cycles(&mut tb, &pkt);
    assert!(
        (79.0..=85.0).contains(&cycles),
        "attack packets: {cycles:.1} cycles/packet, paper: 82"
    );
    for out in tb.outputs() {
        assert_eq!(
            out.desc.port,
            rosebud_core::port::HOST,
            "matched packets go to the host"
        );
        // The rule id rides the end of the frame.
        let sid = u32::from_le_bytes(out.bytes[out.bytes.len() - 4..].try_into().unwrap());
        assert_eq!(sid, rule.id);
    }
}

#[test]
fn non_ip_packet_is_dropped_cheaply() {
    let mut tb = pigasus_bench();
    let pkt = PacketBuilder::new()
        .ethertype(rosebud_net::EtherType::ARP)
        .pad_to(64)
        .build();
    let report = tb.process_one(&pkt, 500);
    assert_eq!(report.outputs.len(), 1);
    assert_eq!(report.outputs[0].desc.len, 0, "dropped via zero length");
    assert!(report.cycles < 30);
}

#[test]
fn firewall_firmware_is_under_45_cycles_per_packet() {
    // 16 RPUs at 250 MHz hit 200 Gbps of 256 B frames (89.3 Mpps) only if
    // the per-packet loop stays under 16 × 250e6 / 89.3e6 ≈ 44.8 cycles.
    let blacklist = synthetic_blacklist(256, 3);
    let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(16));
    tb.set_accelerator(Box::new(FirewallMatcher::from_prefixes(&blacklist)));
    tb.load_riscv(&firewall_image());
    tb.step(100);
    // Steady-state spacing over a burst.
    let pkt = PacketBuilder::new()
        .src_ip([240, 1, 2, 3])
        .tcp(1, 80)
        .pad_to(256)
        .build();
    for _ in 0..8 {
        tb.deliver(&pkt).unwrap();
    }
    tb.step(500);
    let sends: Vec<u64> = tb.outputs().iter().map(|o| o.sent_at).collect();
    assert_eq!(sends.len(), 8);
    let gap = (sends[7] - sends[1]) as f64 / 6.0;
    assert!(
        gap < 44.8,
        "firewall loop {gap:.1} cycles/packet breaks the 256 B line-rate claim"
    );
    assert!(gap > 20.0, "implausibly fast firewall loop: {gap:.1}");
}

#[test]
fn firewall_drop_path_sends_zero_length() {
    let blacklist = vec![[9, 9, 9, 0]];
    let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(16));
    tb.set_accelerator(Box::new(FirewallMatcher::from_prefixes(&blacklist)));
    tb.load_riscv(&firewall_image());
    tb.step(100);
    let bad = PacketBuilder::new()
        .src_ip([9, 9, 9, 77])
        .tcp(1, 2)
        .pad_to(128)
        .build();
    let report = tb.process_one(&bad, 500);
    assert_eq!(
        report.outputs[0].desc.len, 0,
        "blacklisted packet must drop"
    );
    let good = PacketBuilder::new()
        .src_ip([8, 8, 8, 8])
        .tcp(1, 2)
        .pad_to(128)
        .build();
    let report = tb.process_one(&good, 500);
    assert_eq!(report.outputs[0].bytes.len(), 128);
}
