//! Shared helpers for the per-figure benchmark harnesses.
//!
//! Every table and figure in the paper's evaluation has a bench target in
//! `benches/` that regenerates it against the simulator and prints the
//! measured series next to the paper's reference values. Run them all with
//! `cargo bench`, or one with e.g. `cargo bench --bench fig7_forwarding`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rosebud_core::{Harness, Measurement, Rosebud};
use rosebud_net::TrafficGen;

/// Packet sizes of the forwarding sweep (§6.1): powers of two 64–8192 plus
/// the 65-byte worst case and the 1500/9000 MTU points.
pub const FORWARDING_SIZES: &[usize] = &[64, 65, 128, 256, 512, 1024, 1500, 2048, 4096, 8192, 9000];

/// Packet sizes of the IPS comparison (Fig. 8).
pub const IPS_SIZES: &[usize] = &[64, 128, 256, 512, 800, 1024, 1500, 2048];

/// Runs a warm-up then a measurement window and returns the window results.
pub fn measure(
    sys: Rosebud,
    gen: Box<dyn TrafficGen>,
    offered_gbps: f64,
    warmup_cycles: u64,
    window_cycles: u64,
) -> (Measurement, Harness) {
    let mut h = Harness::new(sys, gen, offered_gbps);
    h.run(warmup_cycles);
    h.begin_window();
    h.run(window_cycles);
    (h.measure(), h)
}

/// Prints a section header in the style the harnesses share.
pub fn heading(title: &str) {
    println!();
    println!("== {title} ==");
    println!("{}", "-".repeat(title.len() + 6));
}

/// Resolves the destination for machine-readable benchmark artifacts:
/// `$ROSEBUD_BENCH_OUT` when set, otherwise `default_name` in the workspace
/// root (two levels above this crate's manifest).
pub fn bench_output_path(default_name: &str) -> std::path::PathBuf {
    match std::env::var_os("ROSEBUD_BENCH_OUT") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(default_name),
    }
}

/// Formats an `f64` for JSON output: finite values with enough precision to
/// round-trip usefully, non-finite values as `null` (JSON has no NaN).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_owned()
    }
}

/// Formats a measured-vs-paper pair with a deviation marker.
pub fn versus(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:8.1}        (paper: n/a)");
    }
    let dev = (measured - paper) / paper * 100.0;
    format!("{measured:8.1} vs {paper:8.1}  ({dev:+5.1}%)")
}

/// Scenario builders and measurement loop for the kernel sim-speed
/// comparison (`benches/sim_speed.rs`, the CI smoke job, and the
/// `sim_speed` section of `BENCH_rosebud.json`).
pub mod sim_speed {
    use std::time::Instant;

    use rosebud_apps::forwarder::{duty_cycle_forwarder_asm, forwarder_image};
    use rosebud_core::{Harness, KernelMode, Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
    use rosebud_net::FixedSizeGen;
    use rosebud_riscv::assemble;

    /// The three workload shapes the comparison reports. They span the
    /// kernel's envelope: busy-poll firmware never sleeps (worst case for
    /// quiescent-lane elision), duty-cycled firmware parks in `wfi`
    /// between timer alarms (the representative middlebox idle pattern),
    /// and a fully parked fleet is the elision ceiling.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum Scenario {
        /// §6.1 busy-poll forwarder at saturating offered load.
        BusyPollLoaded,
        /// Duty-cycled (`wfi` + timer alarm) forwarder at light load.
        DutyCycleLight,
        /// Every core halted in `wfi` with interrupts masked; no traffic.
        ParkedIdle,
    }

    impl Scenario {
        /// Stable identifier for tables and JSON.
        pub fn name(self) -> &'static str {
            match self {
                Scenario::BusyPollLoaded => "busy-poll-loaded",
                Scenario::DutyCycleLight => "duty-cycle-light",
                Scenario::ParkedIdle => "parked-idle",
            }
        }

        fn offered_gbps(self) -> f64 {
            match self {
                Scenario::BusyPollLoaded => 205.0,
                Scenario::DutyCycleLight => 5.0,
                Scenario::ParkedIdle => 0.0,
            }
        }
    }

    /// Builds the scenario's system under the given kernel. The decoded-
    /// instruction cache is always on — it is a pure speed knob and part of
    /// both kernels' default configuration.
    pub fn build(scenario: Scenario, rpus: usize, kernel: KernelMode) -> Harness {
        let sys: Rosebud = match scenario {
            Scenario::BusyPollLoaded => {
                let image = forwarder_image();
                Rosebud::builder(RosebudConfig::with_rpus(rpus))
                    .load_balancer(Box::new(RoundRobinLb::new()))
                    .firmware(move |_| RpuProgram::Riscv(image.clone()))
                    .kernel(kernel)
                    .build()
                    .expect("valid config")
            }
            Scenario::DutyCycleLight => {
                let image = assemble(&duty_cycle_forwarder_asm(2000))
                    .expect("duty-cycled forwarder assembles");
                Rosebud::builder(RosebudConfig::with_rpus(rpus))
                    .load_balancer(Box::new(RoundRobinLb::new()))
                    .firmware(move |_| RpuProgram::Riscv(image.clone()))
                    .kernel(kernel)
                    .build()
                    .expect("valid config")
            }
            Scenario::ParkedIdle => {
                let image = assemble("csrw mie, zero\nwfi\nebreak").expect("parks");
                Rosebud::builder(RosebudConfig::with_rpus(rpus))
                    .firmware(move |_| RpuProgram::Riscv(image.clone()))
                    .kernel(kernel)
                    .build()
                    .expect("valid config")
            }
        };
        Harness::new(
            sys,
            Box::new(FixedSizeGen::new(256, 2)),
            scenario.offered_gbps(),
        )
    }

    /// Wall-clock nanoseconds per simulated cycle, min-of-`reps` after a
    /// warm-up — the min discards scheduler noise, which matters on the
    /// small shared runners CI uses.
    pub fn ns_per_cycle(h: &mut Harness, warmup: u64, cycles: u64, reps: usize) -> f64 {
        h.run(warmup);
        let mut best = f64::MAX;
        for _ in 0..reps {
            let t = Instant::now();
            h.run(cycles);
            best = best.min(t.elapsed().as_secs_f64());
        }
        best * 1e9 / cycles as f64
    }

    /// One comparison point: `(sequential ns/cycle, parallel ns/cycle)`.
    /// The parallel side is the fused coordinator (`workers: 0`) — the
    /// configuration that carries quiescent-lane elision.
    pub fn compare(scenario: Scenario, rpus: usize) -> (f64, f64) {
        let mut seq = build(scenario, rpus, KernelMode::Sequential);
        let mut par = build(
            scenario,
            rpus,
            KernelMode::Parallel {
                workers: 0,
                quantum: 1024,
            },
        );
        (
            ns_per_cycle(&mut seq, 10_000, 150_000, 5),
            ns_per_cycle(&mut par, 10_000, 150_000, 5),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_formats_deviation() {
        let s = versus(110.0, 100.0);
        assert!(s.contains("+10.0%"), "{s}");
    }
}
