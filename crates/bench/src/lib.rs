//! Shared helpers for the per-figure benchmark harnesses.
//!
//! Every table and figure in the paper's evaluation has a bench target in
//! `benches/` that regenerates it against the simulator and prints the
//! measured series next to the paper's reference values. Run them all with
//! `cargo bench`, or one with e.g. `cargo bench --bench fig7_forwarding`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rosebud_core::{Harness, Measurement, Rosebud};
use rosebud_net::TrafficGen;

/// Packet sizes of the forwarding sweep (§6.1): powers of two 64–8192 plus
/// the 65-byte worst case and the 1500/9000 MTU points.
pub const FORWARDING_SIZES: &[usize] = &[
    64, 65, 128, 256, 512, 1024, 1500, 2048, 4096, 8192, 9000,
];

/// Packet sizes of the IPS comparison (Fig. 8).
pub const IPS_SIZES: &[usize] = &[64, 128, 256, 512, 800, 1024, 1500, 2048];

/// Runs a warm-up then a measurement window and returns the window results.
pub fn measure(
    sys: Rosebud,
    gen: Box<dyn TrafficGen>,
    offered_gbps: f64,
    warmup_cycles: u64,
    window_cycles: u64,
) -> (Measurement, Harness) {
    let mut h = Harness::new(sys, gen, offered_gbps);
    h.run(warmup_cycles);
    h.begin_window();
    h.run(window_cycles);
    (h.measure(), h)
}

/// Prints a section header in the style the harnesses share.
pub fn heading(title: &str) {
    println!();
    println!("== {title} ==");
    println!("{}", "-".repeat(title.len() + 6));
}

/// Resolves the destination for machine-readable benchmark artifacts:
/// `$ROSEBUD_BENCH_OUT` when set, otherwise `default_name` in the workspace
/// root (two levels above this crate's manifest).
pub fn bench_output_path(default_name: &str) -> std::path::PathBuf {
    match std::env::var_os("ROSEBUD_BENCH_OUT") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(default_name),
    }
}

/// Formats an `f64` for JSON output: finite values with enough precision to
/// round-trip usefully, non-finite values as `null` (JSON has no NaN).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_owned()
    }
}

/// Formats a measured-vs-paper pair with a deviation marker.
pub fn versus(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:8.1}        (paper: n/a)");
    }
    let dev = (measured - paper) / paper * 100.0;
    format!("{measured:8.1} vs {paper:8.1}  ({dev:+5.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_formats_deviation() {
        let s = versus(110.0, 100.0);
        assert!(s.contains("+10.0%"), "{s}");
    }
}
