//! §4.1: partial-reconfiguration timing — "We measured the time to pause,
//! load the new bit file, and boot a new RPU, and it takes 756 milliseconds
//! on average (across 320 loads)" — plus a live no-pause reconfiguration
//! under traffic: packets keep flowing through the other RPUs and none are
//! lost.

use rosebud_apps::forwarder::build_forwarding_system;
use rosebud_bench::{heading, versus};
use rosebud_core::{Harness, PrTimingModel};
use rosebud_net::FixedSizeGen;

fn reload_time_model() {
    heading("§4.1: PR reload time (analytic MCAP model, 320 loads)");
    let model = PrTimingModel::default();
    let samples: Vec<f64> = (0..320).map(|i| model.reload_seconds(i) * 1e3).collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("mean reload: {} ms", versus(mean, 756.0));
    println!("range      : {min:.0}–{max:.0} ms across 320 loads");
}

fn live_reconfiguration_under_traffic() {
    heading("§4.2/A.8: no-pause reconfiguration under 100 Gbps of traffic");
    let sys = build_forwarding_system(16).expect("valid config");
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(512, 2)), 100.0);
    h.run(50_000);
    h.begin_window();
    // Reconfigure RPU 5 while traffic flows (uses the shortened simulated
    // PR duration so the run completes; the wall-clock time is the model
    // above).
    h.sys.reconfigure_rpu(5, None, None);
    let mut done_at = None;
    for cycle in 0..200_000u64 {
        h.tick();
        if done_at.is_none() && !h.sys.reconfigure_pending(5) {
            done_at = Some(cycle);
        }
    }
    let m = h.measure();
    println!(
        "throughput during PR : {:>6.1} Gbps ({} packets, {} injected)",
        m.gbps, m.packets, m.injected
    );
    println!(
        "drops during PR      : {:>6} (framework drops only; LB drained RPU 5 first)",
        h.sys.drop_count()
    );
    println!(
        "PR completed after   : {:>6} cycles of simulated drain+write+boot",
        done_at
            .map(|c| c.to_string())
            .unwrap_or_else(|| "not finished".into())
    );
    println!(
        "RPU 5 re-enabled     : {}",
        h.sys.enabled_mask() & (1 << 5) != 0
    );
}

fn main() {
    reload_time_model();
    live_reconfiguration_under_traffic();
}
