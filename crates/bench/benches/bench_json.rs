//! Machine-readable benchmark summary: emits `BENCH_rosebud.json` with the
//! reproduction's headline numbers — forwarding throughput (64 B and 1500 B),
//! round-trip latency p50/p99, and the self-healing recovery metrics — so CI
//! can archive one comparable artifact per run.
//!
//! Run with: `cargo bench --bench bench_json`
//! Output path: `$ROSEBUD_BENCH_OUT`, else `<workspace root>/BENCH_rosebud.json`.

use rosebud_apps::forwarder::{build_forwarding_system, build_watchdog_forwarding_system};
use rosebud_bench::sim_speed::{compare, Scenario};
use rosebud_bench::{bench_output_path, json_f64, measure};
use rosebud_core::{
    FaultKind, FaultPlan, Fleet, FleetConfig, FleetHarness, FleetSupervisor, FleetSupervisorConfig,
    Harness, KernelMode, Supervisor, SupervisorConfig,
};
use rosebud_kernel::RateWindow;
use rosebud_net::{FixedSizeGen, FlowTrafficGen};

/// One throughput point: saturating offered load, like the Fig. 7 sweep.
struct Throughput {
    size: usize,
    gbps: f64,
    mpps: f64,
    /// Cross-check from the DUT's own §4.3 counters via a `RateWindow`,
    /// in received bits per cycle summed over both ports.
    counter_rx_bits_per_cycle: f64,
}

fn throughput_point(size: usize) -> Throughput {
    let sys = build_forwarding_system(16).expect("valid config");
    // Tracing stays off: this is the overhead-free measurement path.
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(size, 2)), 205.0);
    h.run(20_000);

    // The DUT-side view: a RateWindow over the MAC counters, the consumer
    // the host's §4.3 polling loop would run.
    let totals = |sys: &rosebud_core::Rosebud| {
        let mut sum = sys.port_counters(0);
        let c1 = sys.port_counters(1);
        sum.rx_bytes += c1.rx_bytes;
        sum.rx_frames += c1.rx_frames;
        sum.tx_bytes += c1.tx_bytes;
        sum.tx_frames += c1.tx_frames;
        sum
    };
    let mut window = RateWindow::new(h.sys.now(), totals(&h.sys));
    h.begin_window();
    h.run(30_000);
    let m = h.measure();
    let rate = window.sample(h.sys.now(), totals(&h.sys));
    Throughput {
        size,
        gbps: m.gbps,
        mpps: m.mpps,
        counter_rx_bits_per_cycle: rate.rx_bits_per_cycle(),
    }
}

struct Latency {
    p50_ns: f64,
    p99_ns: f64,
}

fn latency_point() -> Latency {
    // Light load so queueing does not dominate: the paper's RTT experiment
    // (§6.2) measures the pipeline, not a saturated FIFO.
    let sys = build_forwarding_system(16).expect("valid config");
    let (_, mut h) = measure(
        sys,
        Box::new(FixedSizeGen::new(512, 2)),
        20.0,
        20_000,
        30_000,
    );
    Latency {
        p50_ns: h.latency().percentile(50.0),
        p99_ns: h.latency().percentile(99.0),
    }
}

struct Recovery {
    detection_latency_cycles: u64,
    downtime_cycles: u64,
    packets_purged: u64,
}

fn recovery_point() -> Recovery {
    // The §3.4 scenario the recovery bench uses: hang RPU 3 under live
    // traffic and let the supervisor walk its ladder.
    let mut sys = build_watchdog_forwarding_system(8, 64).expect("valid config");
    sys.install_fault_plan(FaultPlan::new(1).at(50_000, FaultKind::FirmwareHang { rpu: 3 }));
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );
    for _ in 0..120_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    let ev = h.sys.recovery_log()[0];
    Recovery {
        detection_latency_cycles: ev.detection_latency.unwrap_or_default(),
        downtime_cycles: ev.downtime,
        packets_purged: ev.packets_purged,
    }
}

struct FleetBench {
    boxes: usize,
    aggregate_gbps: f64,
    per_box_p99_ns: Vec<f64>,
    failover_downtime_cycles: u64,
    packets_purged: u64,
    flows_disturbed: u64,
    flows_seen: u64,
}

fn fleet_point() -> FleetBench {
    // The rack-scale failover drill: 4 boxes behind the consistent-hashing
    // front LB, one killed cold mid-run, measured after re-admission.
    const BOXES: usize = 4;
    let fleet = Fleet::new(
        FleetConfig {
            boxes: BOXES,
            ..FleetConfig::default()
        },
        KernelMode::Sequential,
        |_| build_watchdog_forwarding_system(4, 64).expect("valid config"),
    )
    .expect("valid fleet config");
    let mut h = FleetHarness::new(
        fleet,
        Box::new(FlowTrafficGen::new(512, 256, 0.0, 11)),
        60.0,
    );
    let mut sup = FleetSupervisor::with_config(
        &h.fleet,
        FleetSupervisorConfig {
            drain_timeout: 4_000,
            reload_cycles: 8_000,
            ..FleetSupervisorConfig::default()
        },
    );
    let run = |h: &mut FleetHarness, sup: &mut FleetSupervisor, cycles: u64| {
        for _ in 0..cycles {
            sup.poll(&mut h.fleet);
            h.tick();
        }
    };
    run(&mut h, &mut sup, 20_000);
    h.fleet
        .inject_fault(FaultKind::BoxCrash { device: BOXES / 2 });
    let mut budget = 80_000u64;
    while h.fleet.failovers().is_empty() && budget > 0 {
        run(&mut h, &mut sup, 1_000);
        budget -= 1_000;
    }
    h.begin_window();
    run(&mut h, &mut sup, 30_000);
    let m = h.measure();
    let rec = h.fleet.failovers().first().copied().expect("one failover");
    FleetBench {
        boxes: BOXES,
        aggregate_gbps: m.gbps,
        per_box_p99_ns: (0..BOXES)
            .map(|b| h.box_latency(b).percentile(99.0))
            .collect(),
        failover_downtime_cycles: rec.downtime,
        packets_purged: rec.packets_purged,
        flows_disturbed: rec.flows_resteered,
        flows_seen: h.fleet.flows_seen(),
    }
}

/// One kernel sim-speed point at 16 RPUs, decode cache on.
struct SimSpeed {
    scenario: &'static str,
    sequential_ns_per_cycle: f64,
    parallel_ns_per_cycle: f64,
    speedup: f64,
}

fn sim_speed_points() -> Vec<SimSpeed> {
    [
        Scenario::BusyPollLoaded,
        Scenario::DutyCycleLight,
        Scenario::ParkedIdle,
    ]
    .into_iter()
    .map(|scenario| {
        let (seq, par) = compare(scenario, 16);
        SimSpeed {
            scenario: scenario.name(),
            sequential_ns_per_cycle: seq,
            parallel_ns_per_cycle: par,
            speedup: seq / par,
        }
    })
    .collect()
}

fn main() {
    let throughput: Vec<Throughput> = [64, 1500].into_iter().map(throughput_point).collect();
    let latency = latency_point();
    let recovery = recovery_point();
    let fleet = fleet_point();
    let sim_speed = sim_speed_points();

    let mut json = String::from("{\n  \"benchmark\": \"rosebud\",\n  \"throughput\": [\n");
    for (i, t) in throughput.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"frame_bytes\": {}, \"gbps\": {}, \"mpps\": {}, \
             \"counter_rx_bits_per_cycle\": {}}}{}\n",
            t.size,
            json_f64(t.gbps),
            json_f64(t.mpps),
            json_f64(t.counter_rx_bits_per_cycle),
            if i + 1 < throughput.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"latency\": {{\"p50_ns\": {}, \"p99_ns\": {}}},\n",
        json_f64(latency.p50_ns),
        json_f64(latency.p99_ns),
    ));
    json.push_str(&format!(
        "  \"recovery\": {{\"detection_latency_cycles\": {}, \"downtime_cycles\": {}, \
         \"packets_purged\": {}}},\n",
        recovery.detection_latency_cycles, recovery.downtime_cycles, recovery.packets_purged,
    ));
    let p99s: Vec<String> = fleet.per_box_p99_ns.iter().map(|v| json_f64(*v)).collect();
    json.push_str(&format!(
        "  \"fleet\": {{\"boxes\": {}, \"aggregate_gbps\": {}, \"per_box_p99_ns\": [{}], \
         \"failover_downtime_cycles\": {}, \"packets_purged\": {}, \"flows_disturbed\": {}, \
         \"flows_seen\": {}}},\n",
        fleet.boxes,
        json_f64(fleet.aggregate_gbps),
        p99s.join(", "),
        fleet.failover_downtime_cycles,
        fleet.packets_purged,
        fleet.flows_disturbed,
        fleet.flows_seen,
    ));
    json.push_str("  \"sim_speed\": [\n");
    for (i, p) in sim_speed.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"rpus\": 16, \"sequential_ns_per_cycle\": {}, \
             \"parallel_ns_per_cycle\": {}, \"speedup\": {}}}{}\n",
            p.scenario,
            json_f64(p.sequential_ns_per_cycle),
            json_f64(p.parallel_ns_per_cycle),
            json_f64(p.speedup),
            if i + 1 < sim_speed.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    let path = bench_output_path("BENCH_rosebud.json");
    std::fs::write(&path, &json).expect("write benchmark summary");
    println!("wrote {}", path.display());
    print!("{json}");
}
