//! Ablations of the design choices the paper argues for:
//!
//! 1. RPU count vs. per-RPU area (§7.1.2): why the Pigasus port used the
//!    8-RPU layout — 16-RPU blocks are too small for the engine, and "a
//!    layout with 4 RPUs would have more resources per RPU, but the
//!    overhead of software running on RISC-V cores would become a
//!    bottleneck".
//! 2. Load-balancer policy (§4.2): round-robin vs. least-loaded vs. hash.
//! 3. Per-RPU link width (§4.3): why 32 Gbps per RPU is enough — and what
//!    narrower links would cost in latency and aggregate bandwidth.
//! 4. Broadcast outbox depth (§6.3): saturated latency scales with the
//!    16 + 2 FIFO entries.

use rosebud_apps::forwarder::build_forwarding_system_with;
use rosebud_apps::pigasus::{build_pigasus_system_with, ReorderMode};
use rosebud_apps::rules::synthetic_rules;
use rosebud_bench::{heading, measure};
use rosebud_core::resources::FrameworkResources;
use rosebud_core::{Harness, LoadBalancer, RosebudConfig};
use rosebud_net::{AttackMixGen, FixedSizeGen, FlowTrafficGen};

fn rpu_count_vs_area() {
    heading("Ablation 1: RPU count vs per-RPU area for the Pigasus port (§7.1.2)");
    println!(
        "{:>5} | {:>8} | {:>14} | {:>10} | {:>9}",
        "RPUs", "engines", "fits PR block?", "Mpps @512B", "Gbps"
    );
    // Total engine budget held constant at 128 (8 × 16): fewer RPUs get
    // proportionally larger engines.
    for (rpus, engines) in [(4usize, 32u32), (8, 16), (16, 8)] {
        let rules = synthetic_rules(128, 17);
        // Feasibility from the resource model.
        let block = FrameworkResources::new(rpus).pr_block_capacity();
        let accel = rosebud_accel::PigasusMatcher::new(
            rosebud_accel::RuleSet::compile(rules.clone()),
            engines,
        );
        use rosebud_accel::Accelerator;
        let need = accel.resources();
        let (riscv, mem, mgr) = FrameworkResources::new(rpus).rpu_base_breakdown();
        let total = need.plus(riscv).plus(mem).plus(mgr);
        let fits = total.luts <= block.luts && total.uram <= block.uram;

        let sys = build_pigasus_system_with(ReorderMode::Hardware, rules.clone(), rpus, engines)
            .expect("valid config");
        let payloads: Vec<Vec<u8>> = rules.iter().map(|r| r.pattern.clone()).collect();
        let base = FlowTrafficGen::new(4096, 512, 0.003, 23);
        let gen = AttackMixGen::new(base, 0.01, payloads, 29);
        let (m, _) = measure(sys, Box::new(gen), 205.0, 50_000, 120_000);
        println!(
            "{rpus:>5} | {engines:>8} | {:>14} | {:>10.1} | {:>9.1}",
            if fits { "yes" } else { "NO" },
            m.mpps,
            m.gbps
        );
    }
    println!("paper: only the 8-RPU layout both fits the engine and keeps the");
    println!("       software overhead off the critical path.");
}

type LbFactory = fn() -> Box<dyn LoadBalancer>;

fn lb_policy() {
    heading("Ablation 2: load-balancer policy under 200 Gbps of 64 B traffic");
    println!("{:>14} | {:>9} | {:>14}", "policy", "Mpps", "LB stall cyc");
    let policies: Vec<(&str, LbFactory)> = vec![
        (
            "round-robin",
            || Box::new(rosebud_core::RoundRobinLb::new()),
        ),
        ("least-loaded", || {
            Box::new(rosebud_core::LeastLoadedLb::new())
        }),
        ("hash", || Box::new(rosebud_core::HashLb::new())),
    ];
    for (name, make) in policies {
        let mut cfg = RosebudConfig::with_rpus(16);
        cfg.num_ports = 2;
        let image = rosebud_apps::forwarder::forwarder_image();
        let sys = rosebud_core::Rosebud::builder(cfg)
            .load_balancer(make())
            .firmware(move |_| rosebud_core::RpuProgram::Riscv(image.clone()))
            .build()
            .expect("valid config");
        // Hash needs flow diversity to spread.
        let gen = FixedSizeGen::new(64, 2).with_flows(8192);
        let mut h = Harness::new(sys, Box::new(gen), 205.0);
        h.run(40_000);
        h.begin_window();
        h.run(100_000);
        let m = h.measure();
        println!(
            "{name:>14} | {:>9.1} | {:>14}",
            m.mpps,
            h.sys.lb_stall_cycles()
        );
    }
    println!("paper: the policy is swappable; RR suffices for stateless work,");
    println!("       hash buys flow affinity at some imbalance cost (§7.1.3).");
}

fn link_width() {
    heading("Ablation 3: per-RPU distribution link width (§4.3)");
    println!(
        "{:>10} | {:>12} | {:>16} | {:>12}",
        "B/cycle", "Gbps/RPU", "1500B Gbps @16R", "64B RTT µs"
    );
    for width in [8u64, 16, 32] {
        let mut cfg = RosebudConfig::with_rpus(16);
        cfg.rpu_link_bytes_per_cycle = width;
        let sys = build_forwarding_system_with(cfg.clone()).expect("valid config");
        let (m, _) = measure(
            sys,
            Box::new(FixedSizeGen::new(1500, 2)),
            205.0,
            50_000,
            120_000,
        );
        let sys = build_forwarding_system_with(cfg).expect("valid config");
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 2.0);
        h.run(30_000);
        h.begin_window();
        h.run(60_000);
        let rtt = h.latency().mean() / 1000.0;
        println!(
            "{width:>10} | {:>12.0} | {:>16.1} | {:>12.3}",
            width as f64 * 8.0 * 0.25,
            m.gbps,
            rtt
        );
    }
    println!("paper: 32 Gbps per RPU trades a little latency for most of the");
    println!("       switch area; 16 links × 32 Gbps still covers 2×100 G.");
}

fn bcast_depth() {
    heading("Ablation 4: broadcast outbox depth vs saturated latency (§6.3)");
    println!("{:>7} | {:>18}", "depth", "saturated mean ns");
    for depth in [4usize, 18, 64] {
        let mut cfg = RosebudConfig::with_rpus(16);
        cfg.bcast_fifo_depth = depth;
        let mut sys = rosebud_core::Rosebud::builder(cfg)
            .firmware(move |_| {
                rosebud_core::RpuProgram::Native(Box::new(
                    rosebud_apps::messaging::BcastSender::new(0),
                ))
            })
            .build()
            .expect("valid config");
        sys.run(80_000);
        let samples = sys.bcast_latency().samples().to_vec();
        let steady = &samples[samples.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
        println!("{depth:>7} | {mean:>18.0}");
    }
    println!("paper: latency ≈ depth × num_rpus × 4 ns — the 18-entry FIFO");
    println!("       (16 + 2 PR border registers) gives the measured ~1.6 µs.");
}

fn main() {
    rpu_count_vs_area();
    lb_policy();
    link_width();
    bcast_depth();
}
