//! Figure 7 (a) and (b): packet-forwarding throughput as a function of
//! packet size, for the 16-RPU and 8-RPU layouts at 100 and 200 Gbps.
//!
//! The paper's shape: line rate everywhere except 64/65-byte packets, where
//! the 16-cycle forwarder loop caps the system at 250 Mpps (16 RPUs) /
//! 125 Mpps (8 RPUs) — 88 % / 89 % of line rate at 200 G.

use rosebud_apps::forwarder::{build_forwarding_system, build_forwarding_system_single_port};
use rosebud_bench::{heading, measure, versus, FORWARDING_SIZES};
use rosebud_net::{effective_line_rate_gbps, line_rate_pps, FixedSizeGen};

fn paper_expectation(rpus: usize, gbps: f64, size: usize) -> f64 {
    // Line rate, clipped by the firmware packet-rate cap (16 cycles/packet
    // per RPU) and the distribution subsystem's 125 Mpps-per-port limit.
    let ports = if gbps > 100.0 { 2.0 } else { 1.0 };
    let fw_cap: f64 = if rpus >= 16 { 250.0 } else { 125.0 };
    let cap_mpps = fw_cap.min(125.0 * ports);
    let line_mpps = line_rate_pps(gbps, size as u64) / 1e6;
    let mpps = line_mpps.min(cap_mpps);
    mpps * 1e6 * size as f64 * 8.0 / 1e9
}

fn sweep(rpus: usize, gbps: f64) {
    heading(&format!(
        "Fig. 7: forwarding throughput, {rpus} RPUs @ {gbps:.0} Gbps offered"
    ));
    println!(
        "{:>6} | {:>10} | {:>10} | {:>28} | {:>8}",
        "size", "Mpps", "line Mpps", "effective Gbps vs paper", "% line"
    );
    for &size in FORWARDING_SIZES {
        let ports = if gbps > 100.0 { 2 } else { 1 };
        let sys = if ports == 1 {
            build_forwarding_system_single_port(rpus).expect("valid config")
        } else {
            build_forwarding_system(rpus).expect("valid config")
        };
        let warmup = 40_000;
        let window = 150_000;
        let (m, _) = measure(
            sys,
            Box::new(FixedSizeGen::new(size, ports as u8)),
            gbps * 1.02, // saturating offered load
            warmup,
            window,
        );
        let line_mpps = line_rate_pps(gbps, size as u64) / 1e6;
        let line = effective_line_rate_gbps(gbps, size as u64);
        let paper = paper_expectation(rpus, gbps, size);
        println!(
            "{size:>6} | {:>10.1} | {line_mpps:>10.1} | {} | {:>7.1}%",
            m.mpps,
            versus(m.gbps, paper),
            m.gbps / line * 100.0,
        );
    }
}

fn main() {
    sweep(16, 200.0);
    sweep(16, 100.0);
    sweep(8, 200.0);
    sweep(8, 100.0);
}
