//! Figure 8: IPS performance — bandwidth (a) and packet rate (b) — for
//! Pigasus-on-Rosebud with hardware reordering, with software reordering,
//! and for the Snort CPU baseline, under 1 % attack traffic with 0.3 % TCP
//! reordering (§7.1.3).
//!
//! Shape to reproduce: HW reordering reaches ~200 Gbps from 800-byte
//! packets (paper: "almost 200 Gbps for packet sizes larger than 800
//! Bytes"); SW reordering reaches ~100 Gbps at 800 B and ~166 Gbps at
//! 2048 B; Snort stays packet-rate-bound at 4.7–5.6 Mpps regardless of
//! size. Rosebud wins over Snort at every size, by ~6× in packet rate.

use rosebud_apps::pigasus::{build_pigasus_system, ReorderMode};
use rosebud_apps::rules::synthetic_rules;
use rosebud_apps::snort::SnortModel;
use rosebud_bench::{heading, measure, IPS_SIZES};
use rosebud_net::{line_rate_pps, AttackMixGen, FlowTrafficGen};

/// Paper reference points read off Fig. 8a (Gbps), HW reordering.
fn paper_hw_gbps(size: usize) -> f64 {
    let sw_mpps: f64 = 8.0 * 250.0 / 61.0; // firmware-bound region
    let line_mpps = line_rate_pps(200.0, size as u64) / 1e6;
    sw_mpps.min(line_mpps) * size as f64 * 8.0 / 1e3
}

/// Paper reference (Gbps), SW reordering: ~138 cycles/packet at small
/// sizes rising to ~200 at 2048 B.
fn paper_sw_gbps(size: usize) -> f64 {
    let cycles = 138.4 + (size.saturating_sub(800) as f64) * 0.048;
    let sw_mpps: f64 = 8.0 * 250.0 / cycles;
    let line_mpps = line_rate_pps(200.0, size as u64) / 1e6;
    sw_mpps.min(line_mpps) * size as f64 * 8.0 / 1e3
}

fn run_mode(mode: ReorderMode, size: usize) -> (f64, f64) {
    let rules = synthetic_rules(128, 17);
    let sys = build_pigasus_system(mode, rules.clone()).expect("valid config");
    let payloads: Vec<Vec<u8>> = rules.iter().map(|r| r.pattern.clone()).collect();
    let base = FlowTrafficGen::new(8192, size, 0.003, 23);
    let gen = AttackMixGen::new(base, 0.01, payloads, 29);
    let (m, _) = measure(sys, Box::new(gen), 205.0, 60_000, 150_000);
    (m.gbps, m.mpps)
}

fn main() {
    let snort = SnortModel::paper_baseline();
    heading("Fig. 8a: IPS bandwidth (Gbps), 1% attack, 0.3% reordering");
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9}",
        "size", "HW meas", "HW paper", "SW meas", "SW paper", "Snort"
    );
    let mut rates = Vec::new();
    for &size in IPS_SIZES {
        let (hw_gbps, hw_mpps) = run_mode(ReorderMode::Hardware, size);
        let (sw_gbps, sw_mpps) = run_mode(ReorderMode::Software, size);
        println!(
            "{size:>6} | {hw_gbps:>9.1} {:>9.1} | {sw_gbps:>9.1} {:>9.1} | {:>9.1}",
            paper_hw_gbps(size),
            paper_sw_gbps(size),
            snort.gbps(size as u64),
        );
        rates.push((size, hw_mpps, sw_mpps));
    }

    heading("Fig. 8b: IPS packet rate (Mpps)");
    println!("{:>6} | {:>9} | {:>9} | {:>9}", "size", "HW", "SW", "Snort");
    for (size, hw, sw) in rates {
        println!(
            "{size:>6} | {hw:>9.1} | {sw:>9.1} | {:>9.1}",
            snort.mpps(size as u64)
        );
    }
    println!();
    println!("paper: HW reordering ~33 Mpps firmware-bound below 800 B, line-rate above;");
    println!("       SW reordering ~14.5 Mpps at small sizes; Snort flat at 4.7–5.6 Mpps.");
}
