//! Criterion micro-benchmarks for the substrates: multi-pattern matching
//! throughput (the honest CPU-vs-hardware comparison grounding §7.1.3),
//! RV32 instruction-set-simulator speed, and whole-system tick rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rosebud_accel::{AhoCorasick, Pattern};
use rosebud_apps::forwarder::build_forwarding_system;
use rosebud_apps::rules::{attack_trace, compile, synthetic_rules};
use rosebud_apps::snort::CpuMatcher;
use rosebud_core::{Harness, TraceConfig};
use rosebud_net::{FixedSizeGen, TrafficGen};
use rosebud_riscv::{assemble, Cpu, RamBus, StepResult};

fn bench_aho_corasick(c: &mut Criterion) {
    let mut group = c.benchmark_group("aho_corasick_scan");
    for &patterns in &[16usize, 128, 1024] {
        let pats: Vec<Pattern> = synthetic_rules(patterns, 3)
            .into_iter()
            .map(|r| Pattern::new(r.id, &r.pattern))
            .collect();
        let ac = AhoCorasick::build(&pats);
        let haystack = {
            let mut gen = FixedSizeGen::new(1500, 1);
            let mut bytes = Vec::new();
            for i in 0..64 {
                bytes.extend_from_slice(gen.generate(i, 0).bytes());
            }
            bytes
        };
        group.throughput(Throughput::Bytes(haystack.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(patterns),
            &haystack,
            |b, haystack| {
                b.iter(|| {
                    let mut hits = 0u64;
                    ac.scan(haystack, |_| hits += 1);
                    hits
                })
            },
        );
    }
    group.finish();
}

fn bench_cpu_matcher_trace(c: &mut Criterion) {
    // The real software-IDS data path: per-packet multi-pattern scan. This
    // grounds the Snort baseline's "packet-rate-bound" behaviour.
    let rules = synthetic_rules(256, 5);
    let matcher = CpuMatcher::new(compile(rules.clone()));
    let trace = attack_trace(&rules, 800);
    let mut group = c.benchmark_group("cpu_ids_scan_trace");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("serial", |b| b.iter(|| matcher.scan_trace(&trace)));
    group.bench_function("4_threads", |b| {
        b.iter(|| matcher.scan_trace_parallel(&trace, 4))
    });
    group.finish();
}

fn bench_riscv_iss(c: &mut Criterion) {
    let image = assemble(
        "
            li a0, 0
            li a1, 1000000
        loop:
            addi a0, a0, 3
            xor a2, a0, a1
            srli a3, a2, 2
            add a0, a0, a3
            addi a1, a1, -1
            bnez a1, loop
            ebreak
        ",
    )
    .unwrap();
    let mut group = c.benchmark_group("riscv_iss");
    group.throughput(Throughput::Elements(600));
    group.bench_function("steps_per_sec", |b| {
        b.iter(|| {
            let mut bus = RamBus::new(4096);
            bus.load_image(0, image.words());
            let mut cpu = Cpu::new(0);
            // 100 loop iterations ≈ 600 instructions.
            for _ in 0..600 {
                if matches!(cpu.step(&mut bus), StepResult::Break) {
                    break;
                }
            }
            cpu.instret()
        })
    });
    group.finish();
}

fn bench_system_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_tick");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("16rpu_forwarding_1000_cycles", |b| {
        let sys = build_forwarding_system(16).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 200.0);
        h.run(20_000); // steady state
        b.iter(|| {
            h.run(1000);
            h.received()
        })
    });
    group.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    // The tentpole claim: tracing disabled is free (an `Option` that is
    // `None` on every hook), and even enabled the tick rate stays usable.
    let mut group = c.benchmark_group("tracing_overhead");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("disabled", |b| {
        let sys = build_forwarding_system(16).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 200.0);
        h.run(20_000);
        b.iter(|| {
            h.run(1000);
            h.received()
        })
    });
    group.bench_function("enabled", |b| {
        let mut sys = build_forwarding_system(16).unwrap();
        sys.enable_tracing(TraceConfig {
            // Bound memory for a long criterion run; drops are counted, not
            // silently lost.
            max_events: 1 << 16,
            ..TraceConfig::default()
        });
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 200.0);
        h.run(20_000);
        b.iter(|| {
            h.run(1000);
            h.received()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aho_corasick,
    bench_cpu_matcher_trace,
    bench_riscv_iss,
    bench_system_tick,
    bench_tracing_overhead
);
criterion_main!(benches);
