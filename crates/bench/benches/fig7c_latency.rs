//! Figure 7 (c): round-trip forwarding latency vs. packet size, under low
//! load and at saturation, against the paper's serialization model (Eq. 1):
//!
//! ```text
//! est. latency (µs) = size · 8 · (2/100 + 2/32) / 1000 + 0.765
//! ```
//!
//! Under load the latency barely moves ("high load introduces only marginal
//! additional latency") except for 64-byte packets, where the saturated
//! generator fills the MAC receive FIFO and adds ≈32.8 µs.

use rosebud_apps::forwarder::build_forwarding_system;
use rosebud_bench::{heading, versus};
use rosebud_core::Harness;
use rosebud_net::FixedSizeGen;

fn eq1_us(size: usize) -> f64 {
    size as f64 * 8.0 * (2.0 / 100.0 + 2.0 / 32.0) / 1000.0 + 0.765
}

fn run_point(size: usize, offered_gbps: f64) -> f64 {
    let sys = build_forwarding_system(16).expect("valid config");
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(size, 2)), offered_gbps);
    h.run(if offered_gbps > 100.0 {
        300_000
    } else {
        40_000
    });
    h.begin_window();
    h.run(120_000);
    h.latency().mean() / 1000.0
}

fn main() {
    heading("Fig. 7c: round-trip latency (16 RPUs)");
    println!(
        "{:>6} | {:>28} | {:>12} | {:>10}",
        "size", "low-load µs vs Eq. 1", "max-load µs", "added µs"
    );
    for &size in &[64usize, 65, 128, 256, 512, 1024, 1500, 2048, 4096, 8192] {
        let low = run_point(size, 2.0);
        let eq1 = eq1_us(size);
        let high = run_point(size, 205.0);
        let added = high - low;
        println!(
            "{size:>6} | {} | {high:>12.2} | {added:>10.2}",
            versus(low, eq1)
        );
    }
    println!();
    println!("paper: 64 B saturated adds ~32.8 µs (full MAC receive FIFO, §6.2);");
    println!("       all other sizes track Eq. 1 under both loads.");
}
