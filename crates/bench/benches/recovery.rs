//! §3.4/A.8: self-healing recovery under live traffic — detection latency,
//! downtime, throughput during the degraded window, and the cost of the
//! supervisor's polling itself.
//!
//! The headline numbers: a wedged region is detected within one watchdog
//! interval plus one poll period, the LB carries (n-1)/n of the load while
//! the 756 ms-modelled PR reload runs, and the recovered region rejoins
//! with zero unaccounted packets.

use rosebud_apps::forwarder::build_watchdog_forwarding_system;
use rosebud_bench::{heading, versus};
use rosebud_core::{FaultKind, FaultPlan, Harness, PrTimingModel, Supervisor, SupervisorConfig};
use rosebud_net::FixedSizeGen;

const RPUS: usize = 8;
const HANG_AT: u64 = 50_000;

fn run_supervised(h: &mut Harness, sup: &mut Supervisor, cycles: u64) {
    for _ in 0..cycles {
        h.tick();
        sup.poll(&mut h.sys);
    }
}

fn recovery_latency_and_degradation() {
    heading("§3.4: hang detection latency + graceful degradation (8 RPUs, 64 B)");
    let mut sys = build_watchdog_forwarding_system(RPUS, 64).expect("valid config");
    sys.install_fault_plan(FaultPlan::new(1).at(HANG_AT, FaultKind::FirmwareHang { rpu: 3 }));
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );

    run_supervised(&mut h, &mut sup, 20_000);
    h.begin_window();
    run_supervised(&mut h, &mut sup, 25_000);
    let baseline = h.measure().mpps;

    run_supervised(&mut h, &mut sup, 12_000);
    h.begin_window();
    run_supervised(&mut h, &mut sup, 20_000);
    let degraded = h.measure().mpps;

    run_supervised(&mut h, &mut sup, 10_000);
    h.begin_window();
    run_supervised(&mut h, &mut sup, 20_000);
    let recovered = h.measure().mpps;

    let ev = h.sys.recovery_log()[0];
    println!("baseline           : {baseline:>7.1} Mpps");
    println!(
        "degraded (reload)  : {:>7.1} Mpps ({} of baseline)",
        degraded,
        versus(degraded / baseline, 7.0 / 8.0)
    );
    println!("reintegrated       : {recovered:>7.1} Mpps");
    println!(
        "detection latency  : {:>7} cycles (watchdog interval 64 + poll 512)",
        ev.detection_latency.unwrap_or_default()
    );
    println!(
        "downtime           : {:>7} cycles ({} purged, forced: {})",
        ev.downtime, ev.packets_purged, ev.forced
    );
    let model = PrTimingModel::default();
    println!(
        "wall-clock reload  : {:>7.0} ms on hardware (§4.1 model; sim uses a \
         shortened PR window)",
        model.mean_reload_seconds(320) * 1e3
    );
}

fn supervisor_overhead() {
    heading("supervisor polling overhead on a healthy system");
    let mut rates = Vec::new();
    for supervised in [false, true] {
        let sys = build_watchdog_forwarding_system(RPUS, 64).expect("valid config");
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
        let mut sup = Supervisor::new(&h.sys);
        h.run(20_000);
        h.begin_window();
        if supervised {
            run_supervised(&mut h, &mut sup, 40_000);
        } else {
            h.run(40_000);
        }
        rates.push(h.measure().mpps);
    }
    println!("unsupervised       : {:>7.1} Mpps", rates[0]);
    println!(
        "supervised         : {:>7.1} Mpps (host-side polling is off the data path)",
        rates[1]
    );
}

fn main() {
    recovery_latency_and_degradation();
    supervisor_overhead();
}
