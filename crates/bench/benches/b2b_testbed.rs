//! Cross-validation: the forwarding result (Fig. 7a) measured through the
//! *complete two-FPGA testbed* — a second Rosebud system running the
//! `basic_pkt_gen` firmware on its 16 RPUs as traffic source/sink, cross-
//! connected with two simulated 100 G cables — instead of the analytic
//! harness. This is the literal Appendix D setup ("The tester FPGA is
//! programmed with the Rosebud framework with a 16-RPU design").
//!
//! Agreement between the two measurement paths is evidence that neither the
//! harness pacing nor the testbed model is doing the work the DUT should do.

use rosebud_apps::forwarder::build_forwarding_system;
use rosebud_apps::pktgen::{build_pktgen_system, BackToBack};
use rosebud_bench::{heading, measure, versus};
use rosebud_net::FixedSizeGen;

fn main() {
    heading("Two-FPGA testbed vs analytic harness (16-RPU forwarder, 200 Gbps)");
    println!(
        "{:>6} | {:>12} | {:>28}",
        "size", "harness Gbps", "testbed Gbps vs harness"
    );
    for &size in &[64usize, 128, 256, 512, 1024, 1500] {
        // Path 1: the analytic harness.
        let sys = build_forwarding_system(16).expect("valid config");
        let (hm, _) = measure(
            sys,
            Box::new(FixedSizeGen::new(size, 2)),
            205.0,
            40_000,
            120_000,
        );
        // Path 2: the full back-to-back testbed. The pkt_gen loop itself
        // caps at 250 Mpps, like the paper's tester.
        let tester = build_pktgen_system(16, size).expect("valid config");
        let dut = build_forwarding_system(16).expect("valid config");
        let mut b2b = BackToBack::new(tester, dut);
        b2b.run(60_000);
        b2b.begin_window();
        b2b.run(120_000);
        let tm = b2b.measure();
        println!(
            "{size:>6} | {:>12.1} | {}",
            hm.gbps,
            versus(tm.gbps, hm.gbps)
        );
    }
    println!();
    println!("note: at 64 B both paths sit at the 250 Mpps firmware cap — the");
    println!("      tester's own 16-cycle generation loop and the DUT's 16-cycle");
    println!("      forwarding loop are the same limit, as the paper observes.");
}
