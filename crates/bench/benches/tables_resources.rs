//! Tables 1–4: FPGA resource utilization of the base 16-RPU and 8-RPU
//! layouts, the Pigasus RPU, and the firewall RPU, from the calibrated
//! parametric resource model (synthesis is not available in this
//! reproduction; see DESIGN.md).

use rosebud_accel::{Accelerator, FirewallMatcher, PigasusMatcher, Rule, RuleSet};
use rosebud_apps::firewall::synthetic_blacklist;
use rosebud_apps::rules::synthetic_rules;
use rosebud_bench::heading;
use rosebud_core::resources::{format_row, FrameworkResources, VU9P};
use rosebud_core::{HashLb, LoadBalancer, RoundRobinLb};

fn base_table(num_rpus: usize) {
    heading(&format!(
        "Table {}: base resource utilization, {num_rpus} RPUs",
        if num_rpus == 16 { 1 } else { 2 }
    ));
    let r = FrameworkResources::new(num_rpus);
    let lb = RoundRobinLb::new().resources(num_rpus);
    let rpu = r.rpu_base();
    let pr = r.pr_block_capacity();
    let remaining_pr = rosebud_accel::ResourceUsage {
        luts: pr.luts - rpu.luts,
        regs: pr.regs - rpu.regs,
        bram: pr.bram - rpu.bram,
        uram: pr.uram - rpu.uram,
        dsp: pr.dsp - rpu.dsp,
    };
    let lb_block = r.lb_block_capacity();
    let remaining_lb = rosebud_accel::ResourceUsage {
        luts: lb_block.luts - lb.luts,
        regs: lb_block.regs - lb.regs,
        bram: lb_block.bram - lb.bram,
        uram: lb_block.uram - lb.uram,
        dsp: lb_block.dsp - lb.dsp,
    };
    println!("{}", format_row("Single RPU", rpu));
    println!("{}", format_row("Remaining (PR)", remaining_pr));
    println!("{}", format_row("LB", lb));
    println!("{}", format_row("Remaining", remaining_lb));
    println!("{}", format_row("Single Interconnect", r.interconnect()));
    println!("{}", format_row("CMAC", r.cmac()));
    println!("{}", format_row("PCIe", r.pcie()));
    println!("{}", format_row("Switching", r.switching()));
    println!("{}", format_row("Complete design", r.complete(lb)));
    println!("{}", format_row("VU9P device", VU9P));
}

fn pigasus_table() {
    heading("Table 3: RPU utilization with Pigasus + hash LB (8-RPU layout)");
    let r = FrameworkResources::new(8);
    let (riscv, mem, mgr) = r.rpu_base_breakdown();
    let rules: Vec<Rule> = synthetic_rules(64, 17);
    let pigasus = PigasusMatcher::new(RuleSet::compile(rules), 16).resources();
    let total = riscv.plus(mem).plus(mgr).plus(pigasus);
    println!("{}", format_row("RISCV core", riscv));
    println!("{}", format_row("Mem. subsystem", mem));
    println!("{}", format_row("Accel. manager", mgr));
    println!("{}", format_row("Pigasus", pigasus));
    println!("{}", format_row("Total", total));
    println!("{}", format_row("RPU (PR capacity)", r.pr_block_capacity()));
    println!("{}", format_row("LB (hash)", HashLb::new().resources(8)));
    println!(
        "paper: Pigasus total 42364 LUTs = 66% of the 64161-LUT PR block; does NOT fit the 16-RPU layout."
    );
}

fn firewall_table() {
    heading("Table 4: RPU utilization with the firewall (16-RPU layout)");
    let r = FrameworkResources::new(16);
    let (riscv, mem, mgr) = r.rpu_base_breakdown();
    let fw = FirewallMatcher::from_prefixes(&synthetic_blacklist(1050, 7)).resources();
    let total = riscv.plus(mem).plus(mgr).plus(fw);
    println!("{}", format_row("RISCV core", riscv));
    println!("{}", format_row("Mem. subsystem", mem));
    println!("{}", format_row("Accel. manager", mgr));
    println!("{}", format_row("Firewall IP checker", fw));
    println!("{}", format_row("Total", total));
    println!("{}", format_row("RPU (PR capacity)", r.pr_block_capacity()));
}

fn main() {
    base_table(16);
    base_table(8);
    pigasus_table();
    firewall_table();
}
