//! Sim-speed comparison: sequential reference kernel vs the parallel
//! kernel (fused coordinator with quiescent-lane elision), swept over RPU
//! counts and the three workload shapes of
//! [`rosebud_bench::sim_speed::Scenario`]. Prints a table of wall-clock
//! ns per simulated cycle and the parallel/sequential speedup.
//!
//! Run with: `cargo bench --bench sim_speed`
//! Smoke mode (CI): `ROSEBUD_SIM_SPEED_SMOKE=1 cargo bench --bench sim_speed`
//! exits non-zero if the parallel kernel is slower than sequential at
//! 16 RPUs on the duty-cycled scenario.

use rosebud_bench::heading;
use rosebud_bench::sim_speed::{compare, Scenario};

fn main() {
    let scenarios = [
        Scenario::BusyPollLoaded,
        Scenario::DutyCycleLight,
        Scenario::ParkedIdle,
    ];

    if std::env::var_os("ROSEBUD_SIM_SPEED_SMOKE").is_some() {
        // CI gate: the parallel kernel must not lose to sequential on the
        // workload elision exists for.
        let (seq, par) = compare(Scenario::DutyCycleLight, 16);
        let ratio = seq / par;
        println!(
            "smoke duty-cycle-light n=16: seq {seq:.0} ns/cyc, par {par:.0} ns/cyc, {ratio:.2}x"
        );
        if ratio < 1.0 {
            eprintln!("FAIL: parallel kernel slower than sequential at 16 RPUs");
            std::process::exit(1);
        }
        return;
    }

    heading("sim speed: sequential vs parallel kernel (ns per simulated cycle)");
    println!(
        "{:<18} {:>5} {:>12} {:>12} {:>9}",
        "scenario", "rpus", "seq ns/cyc", "par ns/cyc", "speedup"
    );
    for scenario in scenarios {
        for rpus in [1usize, 4, 8, 16] {
            let (seq, par) = compare(scenario, rpus);
            println!(
                "{:<18} {:>5} {:>12.0} {:>12.0} {:>8.2}x",
                scenario.name(),
                rpus,
                seq,
                par,
                seq / par
            );
        }
    }
}
