//! Figure 9: average RISC-V cycles spent per packet, derived — exactly as
//! the paper does — "by reversing the frame rate output": cycles/packet =
//! num_rpus × clock / packet_rate, while the firmware (not the line rate)
//! is the bottleneck.
//!
//! Paper anchors: 60.2 cycles/packet for hardware reordering at small
//! sizes (61 safe-TCP / 59 safe-UDP / 82 attack in simulation); ≈138.4 at
//! 64 B for software reordering, rising slightly until 1500 B.

use rosebud_apps::pigasus::{build_pigasus_system, ReorderMode};
use rosebud_apps::rules::synthetic_rules;
use rosebud_bench::{heading, measure, versus};
use rosebud_net::{AttackMixGen, FlowTrafficGen};

fn cycles_per_packet(mode: ReorderMode, size: usize) -> f64 {
    let rules = synthetic_rules(128, 17);
    let sys = build_pigasus_system(mode, rules.clone()).expect("valid config");
    let payloads: Vec<Vec<u8>> = rules.iter().map(|r| r.pattern.clone()).collect();
    let base = FlowTrafficGen::new(8192, size, 0.003, 23);
    let gen = AttackMixGen::new(base, 0.01, payloads, 29);
    let (m, _) = measure(sys, Box::new(gen), 205.0, 60_000, 150_000);
    8.0 * m.cycles as f64 / m.packets as f64
}

fn paper_hw(size: usize) -> f64 {
    // Firmware-bound below 800 B; above, the line rate hides the firmware.
    let _ = size;
    60.2
}

fn paper_sw(size: usize) -> f64 {
    138.4 + (size.saturating_sub(800) as f64) * 0.048
}

fn main() {
    heading("Fig. 9: average cycles per packet (8 RPUs)");
    println!(
        "{:>6} | {:>28} | {:>28}",
        "size", "HW reorder vs paper", "SW reorder vs paper"
    );
    for &size in &[64usize, 128, 256, 512, 800, 1024, 1500] {
        let hw = cycles_per_packet(ReorderMode::Hardware, size);
        let sw = cycles_per_packet(ReorderMode::Software, size);
        println!(
            "{size:>6} | {} | {}",
            versus(hw, paper_hw(size)),
            versus(sw, paper_sw(size)),
        );
    }
    println!();
    println!("note: once line rate (not firmware) binds, the derived value");
    println!("      stops reflecting software cost — the paper makes the same caveat.");
}
