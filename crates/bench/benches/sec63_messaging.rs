//! §6.3: inter-RPU messaging performance.
//!
//! Two experiments: (1) loopback-port throughput under two-step forwarding
//! — half the RPUs receive from the wire and relay every packet to a
//! partner RPU over the single 100 Gbps loopback port (60 %/61 % of line
//! rate at 64/65 B, line rate from 128 B); (2) broadcast-message latency,
//! sparse (72–92 ns) and saturated (1596–1680 ns at 16 RPUs).

use rosebud_apps::forwarder::build_two_step_system;
use rosebud_apps::messaging::build_bcast_system;
use rosebud_bench::{heading, measure, versus};
use rosebud_net::{effective_line_rate_gbps, FixedSizeGen};

fn loopback_sweep() {
    heading("§6.3: loopback two-step forwarding (16 RPUs, 100 Gbps offered)");
    println!(
        "{:>6} | {:>9} | {:>9} | {:>28}",
        "size", "Gbps", "line Gbps", "% of line vs paper"
    );
    for &size in &[64usize, 65, 128, 256, 512, 1024, 1500] {
        let sys = build_two_step_system(16).expect("valid config");
        let (m, _) = measure(
            sys,
            Box::new(FixedSizeGen::new(size, 2)),
            102.0,
            60_000,
            150_000,
        );
        let line = effective_line_rate_gbps(100.0, size as u64);
        let pct = m.gbps / line * 100.0;
        let paper_pct = match size {
            64 => 60.0,
            65 => 61.0,
            _ => 100.0,
        };
        println!(
            "{size:>6} | {:>9.1} | {line:>9.1} | {}",
            m.gbps,
            versus(pct, paper_pct)
        );
    }
}

fn broadcast_latency() {
    heading("§6.3: broadcast-message latency");
    for (label, rpus, period, paper_lo, paper_hi) in [
        ("sparse, 16 RPUs", 16usize, 1000u64, 72.0, 92.0),
        ("saturated, 16 RPUs", 16, 0, 1596.0, 1680.0),
        ("saturated, 8 RPUs", 8, 0, 630.0, 680.0), // derived: 8×18 grants + pipeline
    ] {
        let mut sys = build_bcast_system(rpus, period).expect("valid config");
        sys.run(80_000);
        let samples = sys.bcast_latency().samples().to_vec();
        let steady = &samples[samples.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
        let min = steady.iter().copied().fold(f64::INFINITY, f64::min);
        let max = steady.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{label:<22}: {min:>6.0}–{max:>6.0} ns (mean {mean:>6.0})   paper: {paper_lo:.0}–{paper_hi:.0} ns"
        );
    }
}

fn main() {
    loopback_sweep();
    broadcast_latency();
}
