//! §7.2: the blacklisting firewall — "We were able to hit 200 Gbps for
//! packets 256 Bytes and above, while injecting attack traffic within the
//! background traffic."
//!
//! The firmware's per-packet loop (parse EtherType, MMIO the source IP to
//! the 2-cycle matcher, read the flag, forward/drop) costs ~30 cycles, so
//! 16 RPUs sustain ~133 Mpps — above the 200 G line rate from 256-byte
//! packets, below it at 128 bytes and under.

use rosebud_apps::firewall::{build_firewall_system, synthetic_blacklist};
use rosebud_bench::{heading, measure, versus};
use rosebud_net::{effective_line_rate_gbps, AttackMixGen, FixedSizeGen};

fn main() {
    heading("§7.2: firewall throughput, 16 RPUs, 1050-entry blacklist, 2% attack");
    println!(
        "{:>6} | {:>9} | {:>28} | {:>10}",
        "size", "Mpps", "Gbps vs paper", "drops"
    );
    let blacklist = synthetic_blacklist(1050, 7);
    for &size in &[64usize, 128, 256, 512, 800, 1024, 1500] {
        let sys = build_firewall_system(16, &blacklist).expect("valid config");
        let base = FixedSizeGen::new(size, 2);
        let gen = AttackMixGen::new(base, 0.02, Vec::new(), 5).with_attack_ips(blacklist.clone());
        let (m, h) = measure(sys, Box::new(gen), 205.0, 60_000, 150_000);
        let line = effective_line_rate_gbps(200.0, size as u64);
        // Paper: line rate from 256 B; firmware-bound below. Dropped attack
        // bytes count as processed (they were absorbed and checked), so add
        // them into the absorbed figure the paper's RX-bytes reading shows.
        let absorbed_gbps = m.gbps / (1.0 - 0.02);
        let paper = if size >= 256 {
            line
        } else {
            line.min(133.0 * size as f64 * 8.0 / 1e3)
        };
        println!(
            "{size:>6} | {:>9.1} | {} | {:>10}",
            m.mpps,
            versus(absorbed_gbps, paper),
            h.sys.drop_count(),
        );
    }
    println!();
    println!("paper: 200 Gbps for 256-byte packets and above (§7.2).");
}
